"""Op-level workload IR: ops that know their own GEMM lowering.

A workload suite used to be a hand-built ``{label: GemmShape}`` dict, which
loses *where* each GEMM came from: a batched attention matmul, a conv
backward pass and an FC projection all flatten to anonymous ``(m, n, k)``
triples.  This module keeps the provenance.  A model is a sequence of
frozen **ops** —

- :class:`MatmulOp` — one plain GEMM, dimensions role-free;
- :class:`BatchedMatmulOp` — ``count`` independent, identically-shaped
  matmuls (e.g. attention score/context GEMMs, one per head per sequence);
- :class:`ConvOp` — a convolution in ``fwd``/``dgrad``/``wgrad`` form;
- :class:`FCOp` — a fully connected layer, likewise per training pass —

and a registered lowering pipeline turns each op into tile-engine work:
:func:`lower` maps ``(op, LoweringConfig)`` to a tuple of
``(label, GemmShape, count)`` entries, the multiset rows a
:class:`repro.workloads.suites.WorkloadSuite` expands.

Because ops carry *dimension roles*, the :class:`LoweringConfig` knobs can
scale them role-aware, which the generic every-dimension
:meth:`~repro.workloads.gemm.GemmShape.scaled` knob cannot:

- ``scale_batch`` divides the streamed **batch**: a conv's ``N``, an FC's
  batch rows (wherever the pass puts them — wgrad streams batch along K),
  and a batched matmul's ``count``;
- ``scale_spatial`` divides the **spatial/sequence extent**: a conv's
  output- (and dgrad's input-) spatial product, and a batched matmul's
  sequence axes.

With both knobs at 1 every lowering reproduces the legacy catalog shapes
bit for bit, so unscaled suites keep their cache keys (and warm caches).

Shape conventions (M = streamed rows, ``C(MxN) += A(MxK) @ B(KxN)``):

===========  ==========================  =================  ==================
op / pass    M                           N                  K
===========  ==========================  =================  ==================
matmul       m                           n                  k
batched mm   m (x count GEMMs)           n                  k
conv fwd     batch * X' * Y'             filters            C * R * S
conv dgrad   batch * X * Y               C                  filters * R * S
conv wgrad   C * R * S                   filters            batch * X' * Y'
fc fwd       batch                       NON                NIN
fc dgrad     batch                       NIN                NON
fc wgrad     NIN                         NON                batch
===========  ==========================  =================  ==================

The conv backward shapes are the transposed-filter im2col lowerings
implemented functionally in :mod:`repro.workloads.lowering` and validated
against the direct adjoint oracles in :mod:`repro.workloads.reference`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Type, Union

from repro.errors import WorkloadError
from repro.utils.validation import check_positive
from repro.workloads.gemm import GemmShape
from repro.workloads.layers import ConvLayer, FCLayer

#: One lowered multiset row: (layer label, GEMM shape, occurrence count).
LoweredGemm = Tuple[str, GemmShape, int]

#: The training/inference passes an op can represent.
PASSES = ("fwd", "dgrad", "wgrad")


def _check_pass(pass_: str) -> None:
    if pass_ not in PASSES:
        raise WorkloadError(
            f"unknown pass {pass_!r}; known: {', '.join(PASSES)}"
        )


@dataclasses.dataclass(frozen=True)
class LoweringConfig:
    """Dimension-role-aware lowering knobs (both default to identity).

    ``scale_batch`` divides every batch-role dimension and
    ``scale_spatial`` every spatial/sequence-role dimension, each floored
    at 1.  Roles are per-op (see the module shape table), so e.g. a large-
    batch ResNet-50 curve can shrink its ``X' * Y'`` spatial product
    without touching filter counts or channel depths — something the
    generic all-dimension ``scale`` knob cannot express.
    """

    scale_batch: int = 1
    scale_spatial: int = 1

    def __post_init__(self) -> None:
        check_positive("scale_batch", self.scale_batch)
        check_positive("scale_spatial", self.scale_spatial)

    @property
    def is_identity(self) -> bool:
        return self.scale_batch == 1 and self.scale_spatial == 1


DEFAULT_LOWERING = LoweringConfig()


def _scaled(value: int, factor: int) -> int:
    """``value`` divided by ``factor``, floored at 1 (never vanishes)."""
    return value if factor == 1 else max(1, value // factor)


# -- the op hierarchy --------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class MatmulOp:
    """One plain GEMM whose dimensions carry no batch/spatial role."""

    name: str
    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        for field in ("m", "n", "k"):
            check_positive(field, getattr(self, field))

    @property
    def kind(self) -> str:
        return "matmul"

    def with_batch(self, batch: int) -> "MatmulOp":
        """Role-free dims: rebatching a plain matmul is the identity."""
        check_positive("batch", batch)
        return self


@dataclasses.dataclass(frozen=True)
class BatchedMatmulOp:
    """``count`` independent identically-shaped matmuls (heads x sequences).

    Attention lowers head-batched: one op per score/context matmul with
    ``count = heads * sequences``, so the suite multiset carries every
    per-head GEMM while dedup collapses them onto one simulation point.
    ``seq_axes`` names the dims (subset of ``m``/``n``/``k``) that are
    sequence positions — ``scale_spatial`` divides exactly those.
    """

    name: str
    count: int
    m: int
    n: int
    k: int
    seq_axes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for field in ("count", "m", "n", "k"):
            check_positive(field, getattr(self, field))
        object.__setattr__(self, "seq_axes", tuple(self.seq_axes))
        for axis in self.seq_axes:
            if axis not in ("m", "n", "k"):
                raise WorkloadError(
                    f"seq_axes must name m/n/k dims, got {axis!r}"
                )

    @property
    def kind(self) -> str:
        return "batched-matmul"

    def with_batch(self, batch: int) -> "BatchedMatmulOp":
        """The batch role of a batched matmul is its GEMM ``count``."""
        check_positive("batch", batch)
        return dataclasses.replace(self, count=batch)


@dataclasses.dataclass(frozen=True)
class ConvOp:
    """A convolution ('same' padding) in forward, dgrad, or wgrad form."""

    name: str
    batch: int    # N
    filters: int  # K
    channels: int  # C
    x: int
    y: int
    r: int
    s: int
    stride: int = 1
    pass_: str = "fwd"

    def __post_init__(self) -> None:
        for field in ("batch", "filters", "channels", "x", "y", "r", "s", "stride"):
            check_positive(field, getattr(self, field))
        _check_pass(self.pass_)

    @classmethod
    def from_layer(
        cls, layer: ConvLayer, pass_: str = "fwd", name: Optional[str] = None
    ) -> "ConvOp":
        return cls(
            name=name if name is not None else layer.name,
            batch=layer.batch,
            filters=layer.filters,
            channels=layer.channels,
            x=layer.x,
            y=layer.y,
            r=layer.r,
            s=layer.s,
            stride=layer.stride,
            pass_=pass_,
        )

    @property
    def kind(self) -> str:
        return f"conv-{self.pass_}"

    @property
    def out_x(self) -> int:
        return -(-self.x // self.stride)

    @property
    def out_y(self) -> int:
        return -(-self.y // self.stride)

    def with_batch(self, batch: int) -> "ConvOp":
        check_positive("batch", batch)
        return dataclasses.replace(self, batch=batch)


@dataclasses.dataclass(frozen=True)
class FCOp:
    """A fully connected layer in forward, dgrad, or wgrad form."""

    name: str
    batch: int
    nin: int
    non: int
    pass_: str = "fwd"

    def __post_init__(self) -> None:
        for field in ("batch", "nin", "non"):
            check_positive(field, getattr(self, field))
        _check_pass(self.pass_)

    @classmethod
    def from_layer(
        cls, layer: FCLayer, pass_: str = "fwd", name: Optional[str] = None
    ) -> "FCOp":
        return cls(
            name=name if name is not None else layer.name,
            batch=layer.batch,
            nin=layer.nin,
            non=layer.non,
            pass_=pass_,
        )

    @property
    def kind(self) -> str:
        return f"fc-{self.pass_}"

    def with_batch(self, batch: int) -> "FCOp":
        check_positive("batch", batch)
        return dataclasses.replace(self, batch=batch)


Op = Union[MatmulOp, BatchedMatmulOp, ConvOp, FCOp]


# -- the lowering registry ---------------------------------------------------------

Lowering = Callable[["Op", LoweringConfig], Tuple[LoweredGemm, ...]]

#: Op type -> lowering function.  Open: new op kinds register here.
LOWERINGS: Dict[Type, Lowering] = {}


def register_lowering(op_type: Type) -> Callable[[Lowering], Lowering]:
    """Class decorator target: register the lowering for one op type."""

    def decorate(fn: Lowering) -> Lowering:
        LOWERINGS[op_type] = fn
        return fn

    return decorate


def lower(op: Op, config: LoweringConfig = DEFAULT_LOWERING) -> Tuple[LoweredGemm, ...]:
    """Lower one op to its ``(label, GemmShape, count)`` multiset rows.

    The registered pipeline dispatches on the op's exact type; unknown op
    types raise :class:`WorkloadError` naming the registered kinds.  With
    the identity config, every lowering reproduces the legacy catalog
    shape for its op bit for bit (golden-tested), so dedup keys — and warm
    result caches — survive the IR.
    """
    try:
        lowering = LOWERINGS[type(op)]
    except KeyError:
        known = ", ".join(t.__name__ for t in LOWERINGS)
        raise WorkloadError(
            f"no registered lowering for {type(op).__name__!r}; known: {known}"
        ) from None
    return lowering(op, config)


@register_lowering(MatmulOp)
def _lower_matmul(op: MatmulOp, config: LoweringConfig) -> Tuple[LoweredGemm, ...]:
    """Identity lowering: dimensions are role-free, knobs do not apply."""
    return ((op.name, GemmShape(m=op.m, n=op.n, k=op.k, name=op.name), 1),)


@register_lowering(BatchedMatmulOp)
def _lower_batched_matmul(
    op: BatchedMatmulOp, config: LoweringConfig
) -> Tuple[LoweredGemm, ...]:
    """Head-batched: one shape, ``count`` occurrences; seq axes scale."""
    dims = {"m": op.m, "n": op.n, "k": op.k}
    for axis in op.seq_axes:
        dims[axis] = _scaled(dims[axis], config.scale_spatial)
    shape = GemmShape(m=dims["m"], n=dims["n"], k=dims["k"], name=op.name)
    return ((op.name, shape, _scaled(op.count, config.scale_batch)),)


@register_lowering(ConvOp)
def _lower_conv(op: ConvOp, config: LoweringConfig) -> Tuple[LoweredGemm, ...]:
    """im2col lowerings per pass (see the module shape table).

    ``scale_spatial`` divides the streamed spatial *product* (output
    spatial for fwd/wgrad, input spatial for dgrad), ``scale_batch`` the
    conv batch — wherever the pass streams it (M for fwd/dgrad, K for
    wgrad).
    """
    batch = _scaled(op.batch, config.scale_batch)
    out_spatial = _scaled(op.out_x * op.out_y, config.scale_spatial)
    in_spatial = _scaled(op.x * op.y, config.scale_spatial)
    taps = op.r * op.s
    if op.pass_ == "fwd":
        m, n, k = batch * out_spatial, op.filters, op.channels * taps
    elif op.pass_ == "dgrad":
        m, n, k = batch * in_spatial, op.channels, op.filters * taps
    else:  # wgrad
        m, n, k = op.channels * taps, op.filters, batch * out_spatial
    return ((op.name, GemmShape(m=m, n=n, k=k, name=op.name), 1),)


@register_lowering(FCOp)
def _lower_fc(op: FCOp, config: LoweringConfig) -> Tuple[LoweredGemm, ...]:
    """FC passes stream batch along M (fwd/dgrad) or K (wgrad)."""
    batch = _scaled(op.batch, config.scale_batch)
    if op.pass_ == "fwd":
        m, n, k = batch, op.non, op.nin
    elif op.pass_ == "dgrad":
        m, n, k = batch, op.nin, op.non
    else:  # wgrad
        m, n, k = op.nin, op.non, batch
    return ((op.name, GemmShape(m=m, n=n, k=k, name=op.name), 1),)


# -- op-sequence helpers -----------------------------------------------------------


def lower_ops(
    ops: Iterable[Op], config: LoweringConfig = DEFAULT_LOWERING
) -> List[Tuple[str, GemmShape]]:
    """Expand a sequence of ops into the flat (label, shape) multiset.

    Each lowered entry repeats ``count`` times, so the result is exactly
    the network-order GEMM stream a back-to-back execution would issue —
    the rows a :class:`repro.workloads.suites.WorkloadSuite` holds.
    """
    rows: List[Tuple[str, GemmShape]] = []
    for op in ops:
        for label, shape, count in lower(op, config):
            rows.extend((label, shape) for _ in range(count))
    return rows


def op_kind_counts(ops: Iterable[Op]) -> Dict[str, int]:
    """``{op kind: op count}`` in first-occurrence order (suite listings)."""
    counts: Dict[str, int] = {}
    for op in ops:
        counts[op.kind] = counts.get(op.kind, 0) + 1
    return counts
