"""ASCII pipeline diagrams of scheduled rasa_mm streams (Fig. 4b).

Renders a sequence of :class:`repro.engine.scheduler.StageTimes` as one lane
per instruction with WL/FF/FS/DR segments on a shared cycle axis — the same
picture the paper uses to explain BASE/PIPE/WLBP/WLS.  Used by the examples
and docs; also a handy debugging tool when writing new control policies.

Example output (WLBP with a bypassed second instruction)::

    cycle     0         1         2
              0123456789012345678901234...
    mm0       WWWWFFFFSSSSDDDD
    mm1           ....FFFFSSSSDDDD
"""

from __future__ import annotations

from typing import List, Sequence

from repro.engine.scheduler import StageTimes

#: One glyph per sub-stage (bypassed WL renders as dots over its FF wait).
_GLYPHS = {"wl": "W", "ff": "F", "fs": "S", "dr": "D", "extra": "+"}


def _lane(times: StageTimes, origin: int, width: int) -> str:
    cells = [" "] * width

    def fill(start: int, end: int, glyph: str) -> None:
        for cycle in range(start - origin, end - origin):
            if 0 <= cycle < width:
                cells[cycle] = glyph

    if not times.bypassed:
        fill(times.wl_start, times.wl_end, _GLYPHS["wl"])
    fill(times.ff_start, times.ff_end, _GLYPHS["ff"])
    fill(times.ff_end, times.fs_end, _GLYPHS["fs"])
    fill(times.fs_end, times.dr_end, _GLYPHS["dr"])
    fill(times.dr_end, times.complete, _GLYPHS["extra"])
    return "".join(cells).rstrip()


def render_pipeline(
    schedule: Sequence[StageTimes],
    max_width: int = 160,
    label_width: int = 8,
) -> str:
    """Render a Fig. 4(b)-style diagram of the scheduled instructions.

    Args:
        schedule: stage times, as produced by the engine scheduler.
        max_width: clip the cycle axis after this many columns.
        label_width: width of the per-lane label column.

    Returns:
        A multi-line string: a cycle ruler plus one lane per rasa_mm.
        Glyphs: W = Weight Load, F = Feed First, S = Feed Second,
        D = Drain, + = merge-adder latency; bypassed instructions show no W.
    """
    if not schedule:
        return "(empty schedule)"
    origin = min(t.wl_start for t in schedule)
    span = max(t.complete for t in schedule) - origin
    width = min(span, max_width)

    tens = "".join(str(((origin + i) // 10) % 10) for i in range(width))
    ones = "".join(str((origin + i) % 10) for i in range(width))
    lines: List[str] = [
        f"{'cycle':<{label_width}}{tens}",
        f"{'':<{label_width}}{ones}",
    ]
    for times in schedule:
        label = f"mm{times.index}" + ("*" if times.bypassed else "")
        lines.append(f"{label:<{label_width}}{_lane(times, origin, width)}")
    if span > max_width:
        lines.append(f"{'':<{label_width}}... ({span - max_width} more cycles)")
    lines.append(
        f"{'':<{label_width}}W=WeightLoad F=FeedFirst S=FeedSecond D=Drain "
        "+=merge  *=WL bypassed"
    )
    return "\n".join(lines)
