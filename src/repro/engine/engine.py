"""MatrixEngine: functional + timed execution of RASA programs.

The engine binds together the tile register file (with WLBP dirty bits), the
systolic array substrate, and the sub-stage scheduler.  It executes whole
:class:`repro.isa.program.Program` streams *engine-bound*: every operand is
assumed ready when its instruction reaches the engine (the paper's "core is
not stalled by memory" idealization, with an infinitely fast frontend).  The
CPU models in :mod:`repro.cpu` reuse the same :class:`EngineScheduler` but
supply real readiness times.

Functional fidelity is selectable per run:

- ``"array"``  — every rasa_mm flows through the cycle-accurate systolic
  array (bit-exact, slow; used by tests and small examples);
- ``"oracle"`` — rasa_mm computed by the NumPy golden oracle with identical
  rounding semantics (fast; still bit-exact by construction);
- ``"off"``    — timing only, no data movement (large benchmark sweeps).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.engine.config import EngineConfig
from repro.engine.scheduler import EngineScheduler, StageTimes
from repro.errors import ConfigError, SimError
from repro.isa.instructions import Instruction, TileReg
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.numerics.mac import matmul_bf16_fp32, matmul_bf16_fp32_chained
from repro.systolic.array import SystolicArray
from repro.tile.memory import TileMemory
from repro.tile.regfile import TileRegisterFile
from repro.tile.vnni import unpack_b_tile

_FUNCTIONAL_MODES = ("array", "oracle", "off")


@dataclasses.dataclass
class EngineStats:
    """Counters accumulated over one program execution."""

    mm_count: int = 0
    bypass_count: int = 0
    weight_load_count: int = 0
    tile_loads: int = 0
    tile_stores: int = 0
    total_cycles: int = 0  # engine cycles, first WL to last completion
    mac_count: int = 0

    @property
    def bypass_rate(self) -> float:
        return self.bypass_count / self.mm_count if self.mm_count else 0.0

    @property
    def mm_throughput(self) -> float:
        """Average rasa_mm initiation interval (engine cycles per mm)."""
        return self.total_cycles / self.mm_count if self.mm_count else 0.0


@dataclasses.dataclass
class EngineReport:
    """Result of :meth:`MatrixEngine.run`: stats plus the full mm schedule."""

    stats: EngineStats
    schedule: List[StageTimes]

    @property
    def total_cycles(self) -> int:
        return self.stats.total_cycles


class MatrixEngine:
    """The RASA matrix engine functional unit.

    Args:
        config: the design point (PE variant + control policy).
        functional: ``"array"``, ``"oracle"``, or ``"off"`` (see module doc).
        memory: simulation memory for tile loads/stores; a fresh one is
            created if omitted (only relevant when ``functional != "off"``).
    """

    def __init__(
        self,
        config: EngineConfig,
        functional: str = "oracle",
        memory: Optional[TileMemory] = None,
    ) -> None:
        if functional not in _FUNCTIONAL_MODES:
            raise ConfigError(
                f"functional must be one of {_FUNCTIONAL_MODES}, got {functional!r}"
            )
        if functional != "off" and not config.is_architectural:
            raise ConfigError(
                "functional execution requires the architectural tile geometry "
                "(hypothetical tile sizes are timing-only; use functional='off')"
            )
        self.config = config
        self.functional = functional
        self.memory = memory if memory is not None else TileMemory()
        self.regfile = TileRegisterFile()
        self.scheduler = EngineScheduler(config)
        self._array: Optional[SystolicArray] = None
        if functional == "array":
            self._array = SystolicArray(
                config.phys_rows,
                config.phys_cols,
                pe=config.pe,
                wl_rows_per_cycle=config.wl_rows_per_cycle,
            )

    def reset(self) -> None:
        """Clear registers, dirty bits, and scheduler state (keep memory)."""
        self.regfile.reset()
        self.scheduler.reset()

    # -- single-instruction execution ------------------------------------------------

    def _weight_key(self, inst: Instruction) -> Tuple[int, int]:
        return (inst.mm_b.index, self.regfile.version(inst.mm_b))

    def _execute_mm_functional(self, inst: Instruction, bypassed: bool) -> None:
        a_tile = self.regfile.read_bf16(inst.mm_a)
        c_tile = self.regfile.read_fp32(inst.mm_c)
        if self.functional == "array":
            assert self._array is not None  # created when functional == "array"
            # Only reload the array's weights when the schedule says WL ran:
            # if bypass bookkeeping ever diverged from the data, outputs would
            # be computed with stale weights and the oracle check would fail.
            if not bypassed:
                b_tile = unpack_b_tile(self.regfile.read_bf16(inst.mm_b))
                self._array.load_weights(b_tile)
            run = self._array.stream(a_tile, c_tile)
            result = run.output
        else:
            b_tile = unpack_b_tile(self.regfile.read_bf16(inst.mm_b))
            if self.config.pe.is_double_multiplier:
                result = matmul_bf16_fp32_chained(
                    a_tile, b_tile, c_tile, chains=self.config.pe.psum_chains
                )
            else:
                result = matmul_bf16_fp32(a_tile, b_tile, c_tile)
        self.regfile.write_fp32(inst.mm_c, result)

    def _execute_mm(self, inst: Instruction, stats: EngineStats) -> StageTimes:
        key = self._weight_key(inst)
        # Cross-check the architectural dirty-bit protocol against the exact
        # version key: they must always agree, or WLBP would be unsafe.
        dirty_bit_says = self.regfile.can_bypass_weight_load(inst.mm_b)
        key_says = self.scheduler.resident_weights == key
        if dirty_bit_says != key_says:
            raise SimError(
                f"dirty-bit protocol diverged from content versions on {inst}"
            )
        times = self.scheduler.schedule_mm(ready_b=0, ready_ac=0, weight_key=key)
        # Record the weight-load residency *before* the writeback: the WL
        # consumes B at weight-load time, so if C names the same register the
        # accumulate must re-dirty it (caught by the fuzz suite).
        if not times.bypassed:
            self.regfile.mark_weights_loaded(inst.mm_b)
        if self.functional != "off":
            self._execute_mm_functional(inst, bypassed=times.bypassed)
        stats.mm_count += 1
        stats.mac_count += self.config.tile_m * self.config.tile_n * self.config.tile_k
        if times.bypassed:
            stats.bypass_count += 1
        else:
            stats.weight_load_count += 1
        return times

    # -- whole-program execution --------------------------------------------------------

    def run(self, program: Program) -> EngineReport:
        """Execute a program engine-bound (all operands ready on arrival).

        Tile loads/stores move data (when functional) but take zero engine
        time — this isolates the engine's own pipelining behaviour, which is
        what Fig. 7's asymptote reasons about.  Use the CPU models for
        end-to-end timing.
        """
        stats = EngineStats()
        schedule: List[StageTimes] = []
        for inst in program:
            if inst.opcode is Opcode.RASA_TL:
                assert inst.mem is not None  # _validate invariant
                assert isinstance(inst.dst, TileReg)  # _validate invariant
                if self.functional != "off":
                    tile = self.memory.load_tile(inst.mem.address, inst.mem.stride)
                    self.regfile.write_bytes(inst.dst, tile)
                else:
                    self.regfile.touch(inst.dst)
                stats.tile_loads += 1
            elif inst.opcode is Opcode.RASA_TS:
                assert inst.mem is not None  # _validate invariant
                if self.functional != "off":
                    src = inst.srcs[0]
                    assert isinstance(src, TileReg)  # _validate invariant
                    tile = self.regfile.read_bytes(src)
                    self.memory.store_tile(inst.mem.address, tile, inst.mem.stride)
                stats.tile_stores += 1
            elif inst.opcode is Opcode.RASA_MM:
                schedule.append(self._execute_mm(inst, stats))
            # Scalar instructions carry no engine-side semantics.
        if schedule:
            stats.total_cycles = schedule[-1].complete - schedule[0].wl_start
        return EngineReport(stats=stats, schedule=schedule)
