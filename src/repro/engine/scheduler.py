"""Sub-stage timeline scheduler: where RASA-Control actually happens.

The scheduler assigns each ``rasa_mm`` a :class:`StageTimes` — the engine
cycles at which its WL/FF/FS/DR sub-stages run — subject to

1. dataflow within the instruction: FF may not start before its WL ends
   (weights must be resident / the shadow swap happens at FF start), and the
   streaming wavefront cannot stall, so FS and DR follow FF back-to-back;
2. structural resources: one weight-load path (WL regions serialize), the
   row-0 west feeders (FF regions serialize), the south drain ports;
3. the control policy's overlap rules (Fig. 4b):
   - BASE  — WL waits for the previous DR to finish (full serialization);
   - PIPE  — WL may overlap the previous DR (waits only for its FS end);
   - WLBP  — like PIPE, but when the B register's weights are already
     resident and clean, WL is skipped and FF may start as soon as the
     previous FF ends (overlapping the previous FS and DR);
   - WLS   — WL prefetches into the shadow buffer, constrained only by the
     load links being free and the shadow being vacated (previous FF start).

``check_schedule_legality`` independently re-verifies a produced schedule
against the closed-form per-PE occupancy windows of
:mod:`repro.systolic.timing` — MAC windows, single-buffer weight disturbance
and drain ports must never collide.  The test suite runs it over every
policy and workload shape.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Optional, Sequence

from repro.engine.config import ControlPolicy, EngineConfig
from repro.errors import ScheduleError


@dataclasses.dataclass(frozen=True)
class StageTimes:
    """Scheduled sub-stage boundaries of one rasa_mm, in engine cycles.

    All intervals are half-open.  A bypassed instruction has a zero-width WL
    (``wl_start == wl_end == ff_start``).  ``complete`` adds the pipelined
    merge-adder latency of DM designs to ``dr_end``.
    """

    index: int
    wl_start: int
    wl_end: int
    ff_start: int
    ff_end: int
    fs_end: int
    dr_end: int
    complete: int
    bypassed: bool

    def __post_init__(self) -> None:
        ordered = (
            self.wl_start <= self.wl_end <= self.ff_start
            and self.ff_start <= self.ff_end <= self.fs_end <= self.dr_end <= self.complete
        )
        if not ordered:
            raise ScheduleError(f"stage times out of order: {self}")

    @property
    def fs_start(self) -> int:
        return self.ff_end

    @property
    def dr_start(self) -> int:
        return self.fs_end

    @property
    def span(self) -> int:
        """Cycles from first activity to completion."""
        return self.complete - self.wl_start


class EngineScheduler:
    """Schedules an in-order stream of rasa_mm operations onto the array.

    The scheduler is deliberately independent of the CPU model: callers pass
    operand readiness times (in engine cycles) and an opaque *weight key*
    identifying the B register's exact contents (architectural register plus
    write version), and get back the scheduled stage times.
    """

    def __init__(self, config: EngineConfig) -> None:
        self.config = config
        self._prev: Optional[StageTimes] = None
        self._resident_weights: Optional[Hashable] = None
        self._count = 0
        self._bypasses = 0
        self._weight_loads = 0

    # -- queries ------------------------------------------------------------------

    @property
    def mm_count(self) -> int:
        return self._count

    @property
    def bypass_count(self) -> int:
        return self._bypasses

    @property
    def weight_load_count(self) -> int:
        return self._weight_loads

    @property
    def last(self) -> Optional[StageTimes]:
        return self._prev

    @property
    def resident_weights(self) -> Optional[Hashable]:
        """Key of the weights currently held by the active buffers."""
        return self._resident_weights

    def reset(self) -> None:
        self._prev = None
        self._resident_weights = None
        self._count = 0
        self._bypasses = 0
        self._weight_loads = 0

    # -- scheduling -----------------------------------------------------------------

    def schedule_mm(
        self,
        ready_b: int,
        ready_ac: int,
        weight_key: Hashable,
    ) -> StageTimes:
        """Schedule the next rasa_mm.

        Args:
            ready_b: engine cycle at which the B (weight) register is readable.
            ready_ac: engine cycle at which both A and C registers are readable.
            weight_key: identity of the B register *contents* — equal keys mean
                bit-identical weights (the dirty-bit test of WLBP).

        Returns:
            The scheduled :class:`StageTimes`.
        """
        config = self.config
        stages = config.stages
        prev = self._prev
        policy = config.control

        bypass = (
            policy.bypasses_on_reuse
            and self._resident_weights is not None
            and self._resident_weights == weight_key
        )

        if bypass:
            ff_floor = max(ready_b, ready_ac)
            if prev is not None:
                if config.wlbp_ff_overlaps_fs:
                    ff_floor = max(ff_floor, prev.ff_end)
                else:
                    ff_floor = max(ff_floor, prev.fs_end)
            ff_start = ff_floor
            wl_start = wl_end = ff_start
        else:
            wl_floor = ready_b
            if prev is not None:
                wl_floor = max(wl_floor, prev.wl_end)
                if policy is ControlPolicy.BASE:
                    wl_floor = max(wl_floor, prev.dr_end)
                elif policy in (ControlPolicy.PIPE, ControlPolicy.WLBP):
                    wl_floor = max(wl_floor, prev.fs_end)
                else:  # WLS: shadow load; wait only for the shadow to be free
                    wl_floor = max(wl_floor, prev.ff_start)
            wl_start = wl_floor
            wl_end = wl_start + stages.wl
            ff_start = max(wl_end, ready_ac)
            if prev is not None:
                ff_start = max(ff_start, prev.ff_end)
            self._weight_loads += 1

        ff_end = ff_start + stages.ff
        fs_end = ff_end + stages.fs
        dr_end = fs_end + stages.dr
        complete = dr_end + stages.extra

        times = StageTimes(
            index=self._count,
            wl_start=wl_start,
            wl_end=wl_end,
            ff_start=ff_start,
            ff_end=ff_end,
            fs_end=fs_end,
            dr_end=dr_end,
            complete=complete,
            bypassed=bypass,
        )
        if prev is not None and times.dr_start < prev.dr_end:
            raise ScheduleError(
                f"drain-port conflict between mm {prev.index} and {times.index}: "
                f"{prev.dr_end} > {times.dr_start}"
            )

        self._prev = times
        self._resident_weights = weight_key
        self._count += 1
        if bypass:
            self._bypasses += 1
        return times

    def invalidate_weights(self, weight_key: Hashable) -> None:
        """Drop residency if ``weight_key`` matches (a write dirtied the register)."""
        if self._resident_weights == weight_key:
            self._resident_weights = None


def check_schedule_legality(
    schedule: Sequence[StageTimes],
    config: EngineConfig,
) -> None:
    """Re-verify a schedule against per-PE occupancy closed forms.

    Raises :class:`ScheduleError` on the first violation.  Checks, for every
    adjacent pair of instructions:

    - FF separation >= TM (MAC windows at every PE are disjoint);
    - weights are in place before use (FF >= own WL end);
    - on single-buffered designs, the next WL's buffer-disturbance window
      starts only after the previous instruction's last MAC in every row
      (``wl_start >= prev.ff_start + TM + C − 1``);
    - drain ports never emit two instructions' outputs in the same cycle.
    """
    stages = config.stages
    tm = config.tile_m
    cols = config.phys_cols
    single_buffered = not config.pe.is_double_buffered
    for i, cur in enumerate(schedule):
        if cur.ff_start < cur.wl_end:
            raise ScheduleError(f"mm {cur.index}: FF starts before its WL ends")
        if not cur.bypassed and cur.wl_end - cur.wl_start != stages.wl:
            raise ScheduleError(f"mm {cur.index}: WL duration != {stages.wl}")
        if cur.ff_end - cur.ff_start != stages.ff:
            raise ScheduleError(f"mm {cur.index}: FF duration != {stages.ff}")
        if i == 0:
            continue
        prev = schedule[i - 1]
        if cur.ff_start < prev.ff_start + tm:
            raise ScheduleError(
                f"MAC-window overlap: mm {cur.index} FF at {cur.ff_start} < "
                f"mm {prev.index} FF {prev.ff_start} + TM {tm}"
            )
        if single_buffered and not cur.bypassed:
            earliest = prev.ff_start + tm + cols - 1
            if cur.wl_start < earliest:
                raise ScheduleError(
                    f"weight-buffer disturbance: mm {cur.index} WL at "
                    f"{cur.wl_start} < {earliest} (prev FF {prev.ff_start})"
                )
        if cur.dr_start < prev.dr_end:
            raise ScheduleError(
                f"drain-port conflict between mm {prev.index} and mm {cur.index}"
            )
