"""Engine configuration: tile geometry, array geometry, control policy.

The ISA fixes the logical tile dimensions (Sec. IV-A): TM = 16 input rows,
TK = 32 reduction depth, TN = 16 output columns — one ``rasa_mm`` computes
``C(16x16 f32) += A(16x32 bf16) @ B(32x16 bf16)``.  The *physical* array is
derived from the PE variant: double-multiplier PEs pack two K values per PE,
halving the row count at equal multiplier count (32x16 -> 16x16, Sec. V).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import ConfigError
from repro.systolic.pe import BASELINE_PE, PESpec
from repro.systolic.substage import StageDurations
from repro.tile.layout import BF16_TILE, FP32_TILE


class ControlPolicy(enum.Enum):
    """RASA-Control pipelining schemes (Sec. IV-B, Fig. 4b)."""

    BASE = "base"    # fully serialized rasa_mm execution
    PIPE = "pipe"    # next WL overlaps previous DR
    WLBP = "wlbp"    # dirty-bit weight-load bypass on B reuse (implies PIPE)
    WLS = "wls"      # weight-load skip: prefetch into shadow buffers (needs DB)

    @property
    def bypasses_on_reuse(self) -> bool:
        """Whether the policy skips WL when the resident weights match."""
        return self in (ControlPolicy.WLBP, ControlPolicy.WLS)


@dataclasses.dataclass(frozen=True)
class EngineConfig:
    """Full configuration of one matrix-engine design point.

    Attributes:
        pe: PE microarchitecture variant (data optimization).
        control: control policy (control optimization).
        clock_mhz: engine clock (the paper runs all arrays at 500 MHz).
        wlbp_ff_overlaps_fs: the paper's WLBP additionally lets a bypassed
            instruction's FF overlap the previous FS ("we also allow these
            stages to be overlapped"); set False to restrict a bypassed FF
            to start only at the previous DR (ablation E9).
        tile_m / tile_n / tile_k: logical rasa_mm tile dimensions.  The
            defaults are fixed by the architectural 1 KB tile registers
            (16 x 16 FP32 out, 16 x 32 BF16 in); overriding them models a
            *hypothetical* ISA with differently sized registers — used by
            the register-scaling counterfactual (E17).  Functional execution
            requires the architectural defaults.
    """

    pe: PESpec = BASELINE_PE
    control: ControlPolicy = ControlPolicy.BASE
    clock_mhz: int = 500
    wlbp_ff_overlaps_fs: bool = True
    tile_m: int = FP32_TILE.rows
    tile_n: int = FP32_TILE.cols
    tile_k: int = BF16_TILE.cols

    def __post_init__(self) -> None:
        if self.clock_mhz <= 0:
            raise ConfigError(f"clock_mhz must be positive, got {self.clock_mhz}")
        if self.control is ControlPolicy.WLS and not self.pe.is_double_buffered:
            raise ConfigError(
                "WLS prefetches weights into a shadow buffer and therefore "
                f"requires a double-buffered PE; got {self.pe.name!r}"
            )
        for name in ("tile_m", "tile_n", "tile_k"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.tile_k % self.pe.weights_per_buffer:
            raise ConfigError(
                f"tile_k={self.tile_k} must be divisible by the PE's "
                f"weights_per_buffer={self.pe.weights_per_buffer}"
            )

    @property
    def is_architectural(self) -> bool:
        """True when the tile geometry matches the real 1 KB registers."""
        return (
            self.tile_m == FP32_TILE.rows
            and self.tile_n == FP32_TILE.cols
            and self.tile_k == BF16_TILE.cols
        )

    # -- physical array geometry -------------------------------------------------

    @property
    def phys_rows(self) -> int:
        """Physical PE rows: TK divided by the weights packed per PE."""
        return self.tile_k // self.pe.weights_per_buffer

    @property
    def phys_cols(self) -> int:
        return self.tile_n

    @property
    def num_pes(self) -> int:
        return self.phys_rows * self.phys_cols

    @property
    def num_multipliers(self) -> int:
        """Total multipliers — constant across variants by construction (Sec. V)."""
        return self.num_pes * self.pe.multipliers

    @property
    def wl_rows_per_cycle(self) -> int:
        """B rows delivered per WL cycle (2 with the RASA-DB extra links)."""
        return 2 if self.pe.is_double_buffered else 1

    @property
    def stages(self) -> StageDurations:
        """Sub-stage durations of one rasa_mm on this design."""
        return StageDurations.for_array(
            self.phys_rows,
            self.phys_cols,
            tm=self.tile_m,
            wl_rows_per_cycle=self.wl_rows_per_cycle,
            extra=1 if self.pe.is_double_multiplier else 0,
        )

    @property
    def serial_mm_latency(self) -> int:
        """Latency of one serialized rasa_mm (Eq. 1; 95 for the baseline)."""
        return self.stages.serial_total

    @property
    def min_initiation_interval(self) -> int:
        """The TM-cycle floor on back-to-back rasa_mm throughput (Sec. V)."""
        return self.tile_m

    def min_issue_delta(self, loading: bool) -> int:
        """Provable floor on the completion advance between consecutive mms.

        In engine cycles: however operand readiness lands, instruction *i*'s
        DR end trails instruction *i − 1*'s by at least this much.  Follows
        from :meth:`repro.engine.scheduler.EngineScheduler.schedule_mm`'s
        policy floors (``prev.dr_end`` / ``prev.fs_end`` / ``prev.ff_start``
        for BASE / PIPE+WLBP / WLS), the FF-feeder serialization
        (``ff_start >= prev.ff_end``), and the drain-port serialization the
        scheduler enforces (``dr_start >= prev.dr_end``), using
        ``dr_end == ff_start + ff + fs + dr`` for every scheduled mm.
        :mod:`repro.analysis.bounds` builds its mm-issue throughput lower
        bound from these deltas.

        Args:
            loading: whether the instruction loads weights (False: a
                WLBP/WLS bypass).
        """
        stages = self.stages
        if not loading:
            if self.wlbp_ff_overlaps_fs:
                return max(stages.ff, stages.dr)
            return max(stages.ff + stages.fs, stages.dr)
        if self.control is ControlPolicy.BASE:
            return stages.wl + stages.ff + stages.fs + stages.dr
        if self.control in (ControlPolicy.PIPE, ControlPolicy.WLBP):
            return max(stages.wl + stages.ff + stages.fs, stages.dr)
        # WLS: the shadow load needs only the shadow vacated (prev FF start).
        return max(stages.wl, stages.ff, stages.dr)

    def describe(self) -> str:
        return (
            f"{self.phys_rows}x{self.phys_cols} {self.pe.name} PEs, "
            f"{self.control.value} control @ {self.clock_mhz} MHz"
        )
