"""The RASA matrix engine — the paper's primary contribution.

A :class:`MatrixEngine` wraps the weight-stationary systolic array with:

- the four-sub-stage execution model (WL/FF/FS/DR, Fig. 4a),
- a control policy (BASE, PIPE, WLBP, WLS — Fig. 4b) that decides how the
  sub-stages of consecutive ``rasa_mm`` instructions overlap,
- the per-tile-register dirty bits WLBP consults to skip weight loads, and
- the PE data-path variant (baseline, DB, DM, DMDB — Fig. 4c).

:mod:`repro.engine.designs` names the eight design points the paper
evaluates in Fig. 5.
"""

from repro.engine.config import ControlPolicy, EngineConfig
from repro.engine.diagram import render_pipeline
from repro.engine.scheduler import EngineScheduler, StageTimes, check_schedule_legality
from repro.engine.engine import EngineStats, MatrixEngine
from repro.engine.designs import (
    BASELINE_DESIGN,
    DESIGNS,
    FIG5_DESIGNS,
    FIG6_DESIGNS,
    DesignPoint,
    get_design,
)

__all__ = [
    "ControlPolicy",
    "EngineConfig",
    "EngineScheduler",
    "StageTimes",
    "check_schedule_legality",
    "render_pipeline",
    "MatrixEngine",
    "EngineStats",
    "DesignPoint",
    "DESIGNS",
    "FIG5_DESIGNS",
    "FIG6_DESIGNS",
    "BASELINE_DESIGN",
    "get_design",
]
