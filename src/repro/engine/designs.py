"""The design points evaluated in the paper (Sec. V, Fig. 5 / Fig. 6).

The paper evaluates the serialized baseline plus seven RASA designs, named
by the optimizations they apply.  Five are named explicitly in the text
(RASA-PIPE, RASA-WLBP, RASA-DB-WLS, RASA-DM-WLBP, RASA-DMDB-WLS) and
RASA-DM-PIPE appears as the naming example; we complete the set of seven
with RASA-DMDB-WLBP, the remaining sensible control/data combination.  All
designs keep the multiplier count constant: 32x16 baseline-PE arrays versus
16x16 double-multiplier arrays (512 multipliers either way).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.engine.config import ControlPolicy, EngineConfig
from repro.errors import ConfigError
from repro.systolic.pe import BASELINE_PE, DB_PE, DM_PE, DMDB_PE, PESpec


@dataclasses.dataclass(frozen=True)
class DesignPoint:
    """A named engine design: label, config, and plotting metadata."""

    key: str
    label: str
    config: EngineConfig

    @property
    def is_baseline(self) -> bool:
        return self.key == "baseline"


def _design(key: str, label: str, pe: PESpec, control: ControlPolicy) -> DesignPoint:
    return DesignPoint(key=key, label=label, config=EngineConfig(pe=pe, control=control))


BASELINE_DESIGN = _design("baseline", "Baseline", BASELINE_PE, ControlPolicy.BASE)

#: All design points, in the order Fig. 5 presents them.
DESIGNS: Dict[str, DesignPoint] = {
    d.key: d
    for d in (
        BASELINE_DESIGN,
        _design("rasa-pipe", "RASA-PIPE", BASELINE_PE, ControlPolicy.PIPE),
        _design("rasa-wlbp", "RASA-WLBP", BASELINE_PE, ControlPolicy.WLBP),
        _design("rasa-dm-pipe", "RASA-DM-PIPE", DM_PE, ControlPolicy.PIPE),
        _design("rasa-dm-wlbp", "RASA-DM-WLBP", DM_PE, ControlPolicy.WLBP),
        _design("rasa-db-wls", "RASA-DB-WLS", DB_PE, ControlPolicy.WLS),
        _design("rasa-dmdb-wlbp", "RASA-DMDB-WLBP", DMDB_PE, ControlPolicy.WLBP),
        _design("rasa-dmdb-wls", "RASA-DMDB-WLS", DMDB_PE, ControlPolicy.WLS),
    )
}

#: The seven RASA designs compared against the baseline in Fig. 5.
FIG5_DESIGNS: List[str] = [key for key in DESIGNS if key != "baseline"]

#: The best control optimization per data optimization, compared in Fig. 6.
FIG6_DESIGNS: List[str] = ["rasa-db-wls", "rasa-dm-wlbp", "rasa-dmdb-wls"]


def get_design(key: str) -> DesignPoint:
    """Look up a design by key; raises ConfigError with the known keys."""
    try:
        return DESIGNS[key]
    except KeyError:
        raise ConfigError(
            f"unknown design {key!r}; known designs: {', '.join(DESIGNS)}"
        ) from None
