"""Processing-element microarchitecture variants (Fig. 4c).

All PEs perform mixed-precision MACs (BF16 multiply, FP32 accumulate).  The
four variants differ in weight buffering and multiplier count:

- **baseline** — one multiplier, one adder, a single 2 B weight buffer.
- **DB** (Double Buffering) — adds a shadow 2 B weight buffer plus the links
  to fill it in the background, enabling the WLS control optimization.
- **DM** (Double Multiplier) — two multipliers, two adders, a 4 B weight
  buffer holding two adjacent-K weights; updates two partial-sum chains in
  parallel.  A DM *array* halves its row count at equal multiplier count and
  adds a merge-adder row at the bottom.
- **DMDB** — both.

:class:`PESpec` is purely structural: the functional behaviour lives in
:mod:`repro.systolic.array` (vectorized over the whole array) and the
area/energy consequences in :mod:`repro.physical`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class PESpec:
    """Structural description of one PE variant.

    Attributes:
        name: variant name used in design labels and the registry.
        multipliers: BF16 multipliers per PE (1, or 2 for DM).
        adders: FP32 adders per PE (equals multipliers — one per psum chain).
        weight_buffers: weight buffer copies (2 for DB's shadow buffer).
        weights_per_buffer: BF16 weights held per buffer (2 for DM's 4 B buffer).
    """

    name: str
    multipliers: int
    adders: int
    weight_buffers: int
    weights_per_buffer: int

    def __post_init__(self) -> None:
        if self.multipliers not in (1, 2):
            raise ConfigError(f"PE multipliers must be 1 or 2, got {self.multipliers}")
        if self.adders != self.multipliers:
            raise ConfigError("PE needs one adder per psum chain (adders == multipliers)")
        if self.weight_buffers not in (1, 2):
            raise ConfigError(f"PE weight_buffers must be 1 or 2, got {self.weight_buffers}")
        if self.weights_per_buffer != self.multipliers:
            raise ConfigError(
                "weights_per_buffer must match multipliers "
                f"(got {self.weights_per_buffer} vs {self.multipliers})"
            )

    @property
    def is_double_buffered(self) -> bool:
        return self.weight_buffers == 2

    @property
    def is_double_multiplier(self) -> bool:
        return self.multipliers == 2

    @property
    def psum_chains(self) -> int:
        """Independent partial-sum chains flowing south through this PE."""
        return self.multipliers

    @property
    def weight_buffer_bytes(self) -> int:
        """Total weight storage per PE (BF16 = 2 bytes per weight)."""
        return 2 * self.weights_per_buffer * self.weight_buffers


BASELINE_PE = PESpec("baseline", multipliers=1, adders=1, weight_buffers=1, weights_per_buffer=1)
DB_PE = PESpec("db", multipliers=1, adders=1, weight_buffers=2, weights_per_buffer=1)
DM_PE = PESpec("dm", multipliers=2, adders=2, weight_buffers=1, weights_per_buffer=2)
DMDB_PE = PESpec("dmdb", multipliers=2, adders=2, weight_buffers=2, weights_per_buffer=2)

PE_SPECS: Dict[str, PESpec] = {
    spec.name: spec for spec in (BASELINE_PE, DB_PE, DM_PE, DMDB_PE)
}
