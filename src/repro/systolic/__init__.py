"""Weight-stationary systolic array substrate.

This package implements the array the RASA engine is built around, at two
levels of abstraction that are cross-validated against each other:

- :mod:`repro.systolic.array` — a cycle-accurate *functional* simulator
  (actual BF16/FP32 arithmetic flowing through PE registers, Fig. 1).
- :mod:`repro.systolic.timing` — closed-form latency/occupancy models
  (Eq. 1 / Eq. 2 of the paper) used by the engine scheduler.

plus the PE microarchitecture variants of Fig. 4(c), the PE-utilization
model behind Fig. 2, and SCALE-Sim-style dataflow latency models (WS/OS/IS)
referenced in Sec. II-C.
"""

from repro.systolic.substage import SubStage, StageDurations
from repro.systolic.pe import PESpec, BASELINE_PE, DB_PE, DM_PE, DMDB_PE, PE_SPECS
from repro.systolic.timing import (
    fold_latency,
    inactive_time,
    mac_interval,
    pe_active_cycles,
    weight_disturb_interval,
)
from repro.systolic.array import ArrayRun, SystolicArray
from repro.systolic.os_array import OutputStationaryArray
from repro.systolic.utilization import utilization_single_fold, utilization_sweep
from repro.systolic.dataflow import Dataflow, gemm_dataflow_latency

__all__ = [
    "SubStage",
    "StageDurations",
    "PESpec",
    "BASELINE_PE",
    "DB_PE",
    "DM_PE",
    "DMDB_PE",
    "PE_SPECS",
    "fold_latency",
    "inactive_time",
    "mac_interval",
    "weight_disturb_interval",
    "pe_active_cycles",
    "SystolicArray",
    "OutputStationaryArray",
    "ArrayRun",
    "utilization_single_fold",
    "utilization_sweep",
    "Dataflow",
    "gemm_dataflow_latency",
]
