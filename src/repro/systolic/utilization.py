"""PE-utilization model behind Fig. 2.

For one serialized fold on a TK x TN weight-stationary array streaming TM
input rows, every PE computes for exactly TM cycles out of the fold's
``2·TK + TM + TN − 1`` total (Eq. 1 / Eq. 2), so

    utilization(TM, TK, TN) = TM / (2·TK + TM + TN − 1)

which converges to 1 as TM grows — the effect Fig. 2 plots and the reason
large-TM tiles rescue standalone accelerators but not register-constrained
CPUs.  ``utilization_sweep`` reproduces the figure's series; the cycle-level
cross-check in the test suite confirms the closed form against
:class:`repro.systolic.array.SystolicArray` activity traces.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.systolic.timing import fold_latency
from repro.utils.validation import check_positive


def utilization_single_fold(tm: int, tk: int, tn: int) -> float:
    """Average PE utilization of one serialized fold (Fig. 2's y-axis)."""
    check_positive("tm", tm)
    return tm / fold_latency(tk, tm, tn)


def inactive_fraction(tm: int, tk: int, tn: int) -> float:
    """``1 − TM / Latency_tot`` — the per-PE idle fraction of Sec. III."""
    return 1.0 - utilization_single_fold(tm, tk, tn)


def utilization_sweep(
    tm_values: Sequence[int],
    array_dims: Sequence[Tuple[int, int]],
) -> Dict[Tuple[int, int], list]:
    """Compute Fig. 2's series: utilization vs TM for each array dimension.

    Args:
        tm_values: the TM sweep (the figure's x-axis).
        array_dims: (TK, TN) array dimensions, one series per entry.

    Returns:
        Mapping from (TK, TN) to the list of utilizations over ``tm_values``.
    """
    return {
        (tk, tn): [utilization_single_fold(tm, tk, tn) for tm in tm_values]
        for tk, tn in array_dims
    }
