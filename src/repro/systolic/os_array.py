"""Cycle-accurate output-stationary (OS) systolic array.

The counterpart of :class:`repro.systolic.array.SystolicArray` for the OS
dataflow of Sec. II-C: each PE *owns one output element* ``c[i, j]``; A
streams west->east and B north->south (both skewed), every PE accumulates
for K cycles, then finished outputs shift south and exit.

This makes the WS-vs-OS background comparison cycle-validated rather than
purely analytical: the test suite checks this simulator's latency against
the SCALE-Sim-style closed form in :mod:`repro.systolic.dataflow`
(``2R + C + K − 2``) and its output bit-exactly against the ascending-k
oracle (OS accumulates each output in ascending k naturally).

The RASA engine itself is WS (the paper's choice); the OS array exists as
the background substrate, exercised by E12.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import SimError
from repro.numerics.bf16 import quantize_bf16
from repro.systolic.array import ArrayRun
from repro.utils.validation import check_positive


class OutputStationaryArray:
    """An OS array of ``phys_rows`` x ``phys_cols`` PEs.

    Mapping: PE (i, j) accumulates output ``c[i, j]``; one fold computes an
    (R x C) output tile over the full K extent of the operands.
    """

    def __init__(self, phys_rows: int, phys_cols: int):
        check_positive("phys_rows", phys_rows)
        check_positive("phys_cols", phys_cols)
        self.phys_rows = phys_rows
        self.phys_cols = phys_cols

    @property
    def num_pes(self) -> int:
        return self.phys_rows * self.phys_cols

    def execute(
        self, a: np.ndarray, b: np.ndarray, c_init: Optional[np.ndarray] = None
    ) -> ArrayRun:
        """Compute ``C(RxC) = c_init + A(RxK) @ B(KxC)`` cycle by cycle."""
        rows, cols = self.phys_rows, self.phys_cols
        a = quantize_bf16(np.asarray(a, dtype=np.float32))
        b = quantize_bf16(np.asarray(b, dtype=np.float32))
        if a.ndim != 2 or a.shape[0] != rows:
            raise SimError(f"A must be {rows}xK, got {a.shape}")
        k = a.shape[1]
        if b.shape != (k, cols):
            raise SimError(f"B must be {k}x{cols}, got {b.shape}")
        if c_init is None:
            c_init = np.zeros((rows, cols), dtype=np.float32)
        c_init = np.asarray(c_init, dtype=np.float32)
        if c_init.shape != (rows, cols):
            raise SimError(f"C must be {rows}x{cols}, got {c_init.shape}")

        # PE state: stationary accumulators plus forwarded operand registers.
        acc = c_init.copy()
        a_reg = np.zeros((rows, cols), dtype=np.float32)
        a_valid = np.zeros((rows, cols), dtype=bool)
        b_reg = np.zeros((rows, cols), dtype=np.float32)
        active_trace: List[int] = []

        compute_span = k + rows + cols - 2  # last MAC at PE(R-1, C-1)
        with np.errstate(over="ignore", invalid="ignore"):
            for t in range(compute_span):
                a_in = np.empty_like(a_reg)
                valid_in = np.empty_like(a_valid)
                b_in = np.empty_like(b_reg)
                a_in[:, 1:] = a_reg[:, :-1]
                valid_in[:, 1:] = a_valid[:, :-1]
                b_in[1:, :] = b_reg[:-1, :]
                for i in range(rows):
                    kk = t - i  # skewed A injection on the west edge
                    if 0 <= kk < k:
                        a_in[i, 0] = a[i, kk]
                        valid_in[i, 0] = True
                    else:
                        a_in[i, 0] = 0.0
                        valid_in[i, 0] = False
                for j in range(cols):
                    kk = t - j  # skewed B injection on the north edge
                    b_in[0, j] = b[kk, j] if 0 <= kk < k else 0.0
                # By construction a and b for the same k arrive at PE (i, j)
                # at the same cycle t = k + i + j.
                acc = np.where(valid_in, acc + a_in * b_in, acc).astype(np.float32)
                active_trace.append(int(valid_in.sum()))
                a_reg, a_valid, b_reg = a_in, valid_in, b_in

        # Drain: finished outputs shift south one row per cycle and exit.
        drain_cycles = rows
        active_trace.extend([0] * drain_cycles)
        return ArrayRun(
            output=acc,
            wl_cycles=0,
            stream_cycles=compute_span + drain_cycles,
            active_pes=active_trace,
            num_pes=self.num_pes,
            macs_per_pe_cycle=1,
        )
