"""Closed-form timing of the weight-stationary systolic array.

These formulas are the paper's Eq. 1 / Eq. 2 plus the per-PE occupancy
windows that the engine scheduler's legality checker uses.  All are stated
for an array with ``R`` physical rows (the K dimension), ``C`` physical
columns (the N dimension), streaming ``TM`` input rows, with a weight-load
duration ``WL`` (``R`` cycles at the baseline one-row-per-cycle rate).

Time origin conventions (all validated against the cycle-accurate array):

- Weight loading occupies cycles ``[wl_start, wl_start + WL)``.
- ``ff_start`` is the cycle the first A element enters array row 0.
- PE ``(k, n)`` performs its TM MACs during
  ``[ff_start + k + n, ff_start + k + n + TM)``           (mac_interval)
- The weight buffer of PE row ``k`` is being overwritten during
  ``[wl_start + k·WL/R, wl_start + WL)``  — conservatively widened to the
  whole ``[wl_start, wl_start + WL)`` window by the legality checker.
- Output ``(m, n)`` exits the bottom of column ``n`` at cycle
  ``ff_start + m + (R - 1) + n + 1``.
"""

from __future__ import annotations

from typing import Tuple

from repro.utils.validation import check_non_negative, check_positive


def fold_latency(tk: int, tm: int, tn: int, overlap_wl_ff: bool = False) -> int:
    """Eq. 1: total latency of one serialized fold on a TK x TN array.

    ``2·TK + TM + TN − 1``, or one cycle less when the last WL cycle is
    overlapped with the first FF cycle (the parenthetical in Fig. 1 and the
    ``−2`` form printed as Eq. 1 in the paper body).
    """
    check_positive("tk", tk)
    check_positive("tm", tm)
    check_positive("tn", tn)
    base = 2 * tk + tm + tn - 1
    return base - 1 if overlap_wl_ff else base


def inactive_time(tk: int, tm: int, tn: int) -> int:
    """Eq. 2: cycles each PE spends idle during one serialized fold."""
    return fold_latency(tk, tm, tn) - tm


def pe_active_cycles(tm: int) -> int:
    """Cycles each PE spends computing during one fold (= TM)."""
    check_positive("tm", tm)
    return tm


def mac_interval(ff_start: int, k: int, n: int, tm: int) -> Tuple[int, int]:
    """Half-open cycle interval during which PE (k, n) computes its TM MACs."""
    check_non_negative("k", k)
    check_non_negative("n", n)
    check_positive("tm", tm)
    start = ff_start + k + n
    return (start, start + tm)


def weight_disturb_interval(wl_start: int, wl_cycles: int) -> Tuple[int, int]:
    """Half-open interval during which active weight buffers are overwritten.

    Weight values shift down through the PE weight buffers for the whole
    load, so single-buffered PEs must not compute during this window.  (The
    per-row window is narrower — row k is only disturbed once the first
    value reaches it — but the engine's stage-level rules never rely on
    that slack, so the checker uses the conservative full window.)
    """
    check_positive("wl_cycles", wl_cycles)
    return (wl_start, wl_start + wl_cycles)


def output_exit_cycle(ff_start: int, m: int, n: int, phys_rows: int) -> int:
    """Cycle at which output element (m, n) exits the bottom of column n."""
    check_non_negative("m", m)
    check_non_negative("n", n)
    check_positive("phys_rows", phys_rows)
    return ff_start + m + (phys_rows - 1) + n + 1


def drain_port_interval(ff_start: int, n: int, tm: int, phys_rows: int) -> Tuple[int, int]:
    """Half-open interval during which column n's south port emits outputs."""
    first = output_exit_cycle(ff_start, 0, n, phys_rows)
    return (first, first + tm)
