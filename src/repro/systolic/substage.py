"""RASA execution sub-stages and their durations (Sec. IV-B, Fig. 4a).

RASA splits the execution of one ``rasa_mm`` on a weight-stationary array
into four sub-stages so consecutive instructions can overlap:

- **WL** (Weight Load): B values shift from the top edge to their PEs.
  One B row per cycle over the baseline links; the RASA-DB "extra links"
  double that rate.
- **FF** (Feed First): A and C elements are fed skewed from west/north
  until the *first array row* has received all TM input rows.
- **FS** (Feed Second): the remaining array rows finish receiving inputs
  (the wavefront walks down the remaining R-1 rows).
- **DR** (Drain): remaining partial sums propagate south and exit.

Durations for an array with R physical rows, C physical columns, tile
rows TM: ``WL = ceil(R / wl_rows_per_cycle)``, ``FF = TM``, ``FS = R - 1``,
``DR = C``.  Serial total = Eq. 1's ``2·TK + TM + TN − 1`` for the baseline
32x16 array (WL rate 1, R = TK, C = TN).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.utils.validation import check_non_negative, check_positive


class SubStage(enum.Enum):
    """The four RASA sub-stages, in execution order."""

    WL = "weight_load"
    FF = "feed_first"
    FS = "feed_second"
    DR = "drain"

    @property
    def order(self) -> int:
        return list(SubStage).index(self)


@dataclasses.dataclass(frozen=True)
class StageDurations:
    """Per-sub-stage durations (engine cycles) for one array configuration."""

    wl: int
    ff: int
    fs: int
    dr: int
    #: Extra completion latency after DR (the DM merge-adder row); pipelined,
    #: so it delays instruction completion but never occupies the drain port.
    extra: int = 0

    def __post_init__(self) -> None:
        check_positive("wl", self.wl)
        check_positive("ff", self.ff)
        check_non_negative("fs", self.fs)  # a 1-row array has no second feed
        check_positive("dr", self.dr)
        check_non_negative("extra", self.extra)

    @property
    def serial_total(self) -> int:
        """Latency of one fully serialized instruction (the BASE design)."""
        return self.wl + self.ff + self.fs + self.dr + self.extra

    def of(self, stage: SubStage) -> int:
        return {
            SubStage.WL: self.wl,
            SubStage.FF: self.ff,
            SubStage.FS: self.fs,
            SubStage.DR: self.dr,
        }[stage]

    @classmethod
    def for_array(
        cls,
        phys_rows: int,
        phys_cols: int,
        tm: int,
        wl_rows_per_cycle: int = 1,
        extra: int = 0,
    ) -> "StageDurations":
        """Compute durations for an R x C array streaming TM input rows."""
        check_positive("phys_rows", phys_rows)
        check_positive("phys_cols", phys_cols)
        check_positive("tm", tm)
        check_positive("wl_rows_per_cycle", wl_rows_per_cycle)
        wl = -(-phys_rows // wl_rows_per_cycle)  # ceil division
        return cls(wl=wl, ff=tm, fs=phys_rows - 1, dr=phys_cols, extra=extra)
