"""Cycle-accurate functional weight-stationary systolic array (Fig. 1).

This simulator moves real BF16/FP32 values through PE registers cycle by
cycle: A elements enter skewed from the west, initial C partial sums enter
skewed from the north, products accumulate down each column, and finished
outputs exit the south edge.  It exists to *validate* everything the fast
analytical models claim:

- its output is bit-exact against the NumPy golden oracle
  (:func:`repro.numerics.mac.matmul_bf16_fp32` — or the chained variant for
  DM arrays, whose two psum chains merge at a bottom adder row);
- its measured latency equals Eq. 1's closed form;
- its per-cycle active-PE trace reproduces Fig. 1's utilization numbers
  (8/28 = 28.6 % for the 2x2 toy example).

DM arrays hold ``weights_per_buffer`` adjacent-K weights per PE, so an array
with R physical rows covers ``R * weights_per_buffer`` K values; each PE
updates one partial sum per chain and the chains merge below the array.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.errors import SimError
from repro.numerics.bf16 import quantize_bf16
from repro.systolic.pe import BASELINE_PE, PESpec
from repro.systolic.substage import StageDurations
from repro.utils.validation import check_positive


@dataclasses.dataclass
class ArrayRun:
    """The result of executing one matmul on the array.

    Attributes:
        output: (M, C) float32 result matrix.
        wl_cycles: cycles spent in the Weight Load phase (0 if weights reused).
        stream_cycles: cycles from first A injection to last output ejection.
        active_pes: per-cycle count of PEs that performed a MAC, covering the
            full run (WL cycles first, all zero, then the streaming phase).
        num_pes: total PEs in the array.
        macs_per_pe_cycle: MACs one active PE performs per cycle (1, 2 for DM).
    """

    output: np.ndarray
    wl_cycles: int
    stream_cycles: int
    active_pes: List[int]
    num_pes: int
    macs_per_pe_cycle: int

    @property
    def total_cycles(self) -> int:
        return self.wl_cycles + self.stream_cycles

    @property
    def total_macs(self) -> int:
        return sum(self.active_pes) * self.macs_per_pe_cycle

    @property
    def utilization(self) -> float:
        """Average fraction of PEs active per cycle (Fig. 1's metric)."""
        if not self.active_pes:
            return 0.0
        return sum(self.active_pes) / (self.num_pes * len(self.active_pes))


class SystolicArray:
    """A weight-stationary systolic array of ``phys_rows`` x ``phys_cols`` PEs.

    Args:
        phys_rows: physical PE rows (the K dimension of the mapping).
        phys_cols: physical PE columns (the N dimension).
        pe: PE microarchitecture variant (see :mod:`repro.systolic.pe`).
        wl_rows_per_cycle: B rows delivered per cycle during Weight Load.
            Defaults to 2 for double-buffered PEs (the RASA-DB extra links)
            and 1 otherwise.
    """

    def __init__(
        self,
        phys_rows: int,
        phys_cols: int,
        pe: PESpec = BASELINE_PE,
        wl_rows_per_cycle: Optional[int] = None,
    ):
        check_positive("phys_rows", phys_rows)
        check_positive("phys_cols", phys_cols)
        self.phys_rows = phys_rows
        self.phys_cols = phys_cols
        self.pe = pe
        if wl_rows_per_cycle is None:
            wl_rows_per_cycle = 2 if pe.is_double_buffered else 1
        check_positive("wl_rows_per_cycle", wl_rows_per_cycle)
        self.wl_rows_per_cycle = wl_rows_per_cycle
        # Resident weights: (rows, cols, chains); None until loaded.
        self._weights: Optional[np.ndarray] = None
        self._shadow: Optional[np.ndarray] = None

    # -- geometry ---------------------------------------------------------------

    @property
    def k_extent(self) -> int:
        """K values covered per fold = rows x weights-per-PE."""
        return self.phys_rows * self.pe.weights_per_buffer

    @property
    def num_pes(self) -> int:
        return self.phys_rows * self.phys_cols

    @property
    def chains(self) -> int:
        return self.pe.psum_chains

    def stage_durations(self, tm: int) -> StageDurations:
        """Sub-stage durations for streaming ``tm`` input rows."""
        return StageDurations.for_array(
            self.phys_rows,
            self.phys_cols,
            tm,
            wl_rows_per_cycle=self.wl_rows_per_cycle,
            extra=1 if self.pe.is_double_multiplier else 0,
        )

    # -- weight loading -----------------------------------------------------------

    def _pack_weights(self, b: np.ndarray) -> np.ndarray:
        b = np.asarray(b, dtype=np.float32)
        if b.shape != (self.k_extent, self.phys_cols):
            raise SimError(
                f"weight matrix must be {self.k_extent}x{self.phys_cols}, got {b.shape}"
            )
        qb = quantize_bf16(b)
        # PE (r, c) chain j holds b[chains*r + j, c]: adjacent-K weights pair up
        # inside one DM PE.
        return qb.reshape(self.phys_rows, self.chains, self.phys_cols).transpose(0, 2, 1)

    def load_weights(self, b: np.ndarray) -> int:
        """Load B into the active weight buffers; returns the WL cycle count."""
        self._weights = self._pack_weights(b)
        return self.stage_durations(tm=1).wl

    def load_shadow_weights(self, b: np.ndarray) -> int:
        """Load B into the shadow buffers (DB PEs only); returns WL cycles."""
        if not self.pe.is_double_buffered:
            raise SimError(f"PE variant {self.pe.name!r} has no shadow weight buffer")
        self._shadow = self._pack_weights(b)
        return self.stage_durations(tm=1).wl

    def swap_weight_buffers(self) -> None:
        """Activate the shadow buffer (the single-cycle mux flip of WLS)."""
        if self._shadow is None:
            raise SimError("no shadow weights loaded")
        self._weights, self._shadow = self._shadow, None

    @property
    def weights_loaded(self) -> bool:
        return self._weights is not None

    # -- streaming -----------------------------------------------------------------

    def stream(self, a: np.ndarray, c_init: Optional[np.ndarray] = None) -> ArrayRun:
        """Stream A (M x K) and initial partial sums C (M x N) through the array.

        Weights must already be resident (:meth:`load_weights`).  Returns the
        functional output and the cycle-by-cycle activity trace.  The WL phase
        is *not* included; use :meth:`execute` for a full serialized run.
        """
        if self._weights is None:
            raise SimError("stream() called before load_weights()")
        rows, cols, chains = self.phys_rows, self.phys_cols, self.chains
        a = quantize_bf16(np.asarray(a, dtype=np.float32))
        m_rows = a.shape[0]
        if a.shape != (m_rows, self.k_extent):
            raise SimError(f"A must be Mx{self.k_extent}, got {a.shape}")
        if c_init is None:
            c_init = np.zeros((m_rows, cols), dtype=np.float32)
        c_init = np.asarray(c_init, dtype=np.float32)
        if c_init.shape != (m_rows, cols):
            raise SimError(f"C must be {m_rows}x{cols}, got {c_init.shape}")

        # A element groups per array row: a_grouped[m, r, j] = a[m, chains*r + j].
        a_grouped = a.reshape(m_rows, rows, chains)

        # PE state.
        a_reg = np.zeros((rows, cols, chains), dtype=np.float32)
        a_valid = np.zeros((rows, cols), dtype=bool)
        p_reg = np.zeros((rows, cols, chains), dtype=np.float32)

        output = np.zeros((m_rows, cols), dtype=np.float32)
        captured = np.zeros((m_rows, cols), dtype=bool)
        active_trace: List[int] = []

        compute_span = m_rows + rows + cols - 2  # last bottom-row MAC at span-1
        for t in range(compute_span):
            # Inputs sliding in from the west (skew: row r sees A row t - r).
            a_in = np.empty_like(a_reg)
            valid_in = np.empty_like(a_valid)
            a_in[:, 1:] = a_reg[:, :-1]
            valid_in[:, 1:] = a_valid[:, :-1]
            for r in range(rows):
                m = t - r
                if 0 <= m < m_rows:
                    a_in[r, 0] = a_grouped[m, r]
                    valid_in[r, 0] = True
                else:
                    a_in[r, 0] = 0.0
                    valid_in[r, 0] = False

            # Partial sums sliding in from the north (skew: column n sees C row
            # t - n; chain 0 carries the architectural C value, others start 0).
            p_in = np.empty_like(p_reg)
            p_in[1:] = p_reg[:-1]
            for n in range(cols):
                m = t - n
                p_in[0, n, :] = 0.0
                if 0 <= m < m_rows:
                    p_in[0, n, 0] = c_init[m, n]

            # The MAC: every PE with a valid input accumulates its chains.
            # (Overflow to inf matches the FP32 hardware, not an error.)
            mask = valid_in[:, :, None]
            with np.errstate(over="ignore", invalid="ignore"):
                p_out = np.where(mask, p_in + a_in * self._weights, p_in).astype(
                    np.float32
                )
            active_trace.append(int(valid_in.sum()))

            # Capture finished outputs at the bottom row: the psum computed at
            # (rows-1, n) on cycle t belongs to output row m = t - (rows-1) - n
            # and exits the array on cycle t + 1.
            for n in range(cols):
                m = t - (rows - 1) - n
                if 0 <= m < m_rows and valid_in[rows - 1, n]:
                    merged = p_out[rows - 1, n, 0]
                    for j in range(1, chains):  # DM merge-adder row, FP32 order
                        merged = np.float32(merged + p_out[rows - 1, n, j])
                    output[m, n] = merged
                    captured[m, n] = True

            a_reg, a_valid, p_reg = a_in, valid_in, p_out

        if not captured.all():
            raise SimError("internal error: not all outputs exited the array")

        # One trailing cycle for the last ejection, plus the pipelined
        # merge-adder row latency on DM arrays.
        tail = 1 + (1 if self.pe.is_double_multiplier else 0)
        active_trace.extend([0] * tail)
        return ArrayRun(
            output=output,
            wl_cycles=0,
            stream_cycles=compute_span + tail,
            active_pes=active_trace,
            num_pes=self.num_pes,
            macs_per_pe_cycle=self.chains,
        )

    def execute(
        self, b: np.ndarray, a: np.ndarray, c_init: Optional[np.ndarray] = None
    ) -> ArrayRun:
        """One fully serialized instruction: Weight Load then stream (BASE)."""
        wl = self.load_weights(b)
        run = self.stream(a, c_init)
        return ArrayRun(
            output=run.output,
            wl_cycles=wl,
            stream_cycles=run.stream_cycles,
            active_pes=[0] * wl + run.active_pes,
            num_pes=run.num_pes,
            macs_per_pe_cycle=run.macs_per_pe_cycle,
        )
