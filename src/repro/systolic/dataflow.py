"""SCALE-Sim-style dataflow latency models (Sec. II-C, reference [12]).

The paper situates its WS choice among the three classic GEMM dataflows —
Input Stationary (IS), Weight Stationary (WS), Output Stationary (OS).
This module provides the standard single-fold and whole-GEMM latency models
for all three on an R x C array, following the SCALE-Sim formulation, so the
"why WS" background trade-off is reproducible.

Mapping conventions for a GEMM C(MxN) = A(MxK) x B(KxN):

- **WS**: B stationary, array rows = K, cols = N; A/C stream (the RASA
  baseline).  Fold latency ``2R + TM + C − 1``.
- **IS**: A stationary, array rows = K, cols = M; B streams and outputs
  drain.  Symmetric to WS with N and M swapping the streaming role:
  fold latency ``2R + TN + C − 1``.
- **OS**: C stationary, array rows = M, cols = N; A and B stream in skewed
  and each PE accumulates its own output, which then shifts out.
  Fold latency ``2R + C + TK − 2``.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.utils.validation import check_positive


class Dataflow(enum.Enum):
    """The three classic GEMM dataflows."""

    WS = "weight_stationary"
    IS = "input_stationary"
    OS = "output_stationary"


@dataclasses.dataclass(frozen=True)
class DataflowLatency:
    """Whole-GEMM latency decomposition under one dataflow."""

    dataflow: Dataflow
    folds: int
    fold_cycles: int
    total_cycles: int
    utilization: float


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def fold_cycles(dataflow: Dataflow, rows: int, cols: int, tm: int, tn: int, tk: int) -> int:
    """Serialized latency of one fold under ``dataflow`` on a rows x cols array."""
    for name, value in (("rows", rows), ("cols", cols), ("tm", tm), ("tn", tn), ("tk", tk)):
        check_positive(name, value)
    if dataflow is Dataflow.WS:
        return 2 * rows + tm + cols - 1
    if dataflow is Dataflow.IS:
        return 2 * rows + tn + cols - 1
    return 2 * rows + cols + tk - 2


def gemm_dataflow_latency(
    dataflow: Dataflow,
    m: int,
    n: int,
    k: int,
    rows: int,
    cols: int,
) -> DataflowLatency:
    """Latency of a whole M x N x K GEMM run fold-by-fold (no pipelining).

    The stationary matrix is tiled onto the array; the streaming dimension is
    unconstrained per fold (this is the standalone-accelerator setting of
    Fig. 2, *without* the CPU's register-size limit on the streamed tile).
    """
    for name, value in (("m", m), ("n", n), ("k", k)):
        check_positive(name, value)
    if dataflow is Dataflow.WS:
        folds = _ceil_div(k, rows) * _ceil_div(n, cols)
        per_fold = fold_cycles(dataflow, rows, cols, tm=m, tn=n, tk=k)
    elif dataflow is Dataflow.IS:
        folds = _ceil_div(k, rows) * _ceil_div(m, cols)
        per_fold = fold_cycles(dataflow, rows, cols, tm=m, tn=n, tk=k)
    else:
        folds = _ceil_div(m, rows) * _ceil_div(n, cols)
        per_fold = fold_cycles(dataflow, rows, cols, tm=m, tn=n, tk=k)
    total = folds * per_fold
    macs = m * n * k
    utilization = macs / (total * rows * cols)
    return DataflowLatency(
        dataflow=dataflow,
        folds=folds,
        fold_cycles=per_fold,
        total_cycles=total,
        utilization=min(utilization, 1.0),
    )
