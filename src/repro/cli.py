"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``designs``                       list the registered design points
- ``table1``                        print Table I (+ lowered GEMMs)
- ``fig {1,2,5,6,7}``               regenerate a paper figure
- ``area``                          the Sec. V area/energy report
- ``simulate``                      run one GEMM on one design (any fidelity)
- ``sweep``                         run a (designs x workloads) grid — parallel
                                    and cache-backed via :mod:`repro.runtime` —
                                    or one ad-hoc GEMM via ``--m/--n/--k``
- ``asm`` / ``disasm``              assemble ``.rasa`` text <-> JSONL traces

All simulation commands resolve their backend through the
:mod:`repro.runtime` registry; nothing in the CLI hand-wires a simulator.
Every command prints to stdout and returns a process exit code, so the CLI
is unit-testable by calling :func:`main` directly.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.engine.designs import DESIGNS, get_design
from repro.errors import ReproError
from repro.experiments.area_energy import area_energy_report
from repro.experiments.batch_sweep import fig7_batch_sensitivity
from repro.experiments.layer_table import table1_report
from repro.experiments.ppa_sweep import fig6_performance_per_area
from repro.experiments.runner import (
    ExperimentSettings,
    geometric_mean,
    normalized_runtimes,
    workload_shapes,
)
from repro.experiments.runtime_sweep import fig5_normalized_runtime
from repro.experiments.toy import fig1_toy_example
from repro.experiments.utilization_sweep import fig2_utilization
from repro.isa.assembler import assemble, disassemble
from repro.isa.trace import load_trace, save_trace
from repro.runtime.cache import ResultCache
from repro.runtime.registry import FIDELITIES, resolve_backend
from repro.runtime.sweep import SweepRunner
from repro.utils.tables import format_table
from repro.workloads.codegen import generate_gemm_program
from repro.workloads.gemm import GemmShape


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RASA (DAC 2021) reproduction: simulators, experiments, tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("designs", help="list the registered design points")
    sub.add_parser("table1", help="print Table I")

    fig = sub.add_parser("fig", help="regenerate a paper figure")
    fig.add_argument("number", type=int, choices=(1, 2, 5, 6, 7))
    fig.add_argument("--scale", type=int, default=4,
                     help="divide each GEMM dimension by this factor (default 4)")

    area = sub.add_parser("area", help="Sec. V area/energy report")
    area.add_argument("--scale", type=int, default=4)

    report = sub.add_parser("report", help="full reproduction report (markdown)")
    report.add_argument("--scale", type=int, default=4)
    report.add_argument("-o", "--output", type=Path, default=None,
                        help="write to a file instead of stdout")

    sim = sub.add_parser("simulate", help="run one GEMM on one design")
    sim.add_argument("--design", default="rasa-dmdb-wls", choices=sorted(DESIGNS))
    sim.add_argument("--m", type=int, required=True)
    sim.add_argument("--n", type=int, required=True)
    sim.add_argument("--k", type=int, required=True)
    sim.add_argument("--fidelity", default="fast", choices=sorted(FIDELITIES),
                     help="simulation backend (default: fast)")

    sweep = sub.add_parser(
        "sweep",
        help="run a (designs x workloads) grid, parallel and cache-backed",
    )
    sweep.add_argument("--designs", default="all",
                       help='"all" or comma-separated design keys (default: all)')
    sweep.add_argument("--workloads", default="table1",
                       help='"table1" or comma-separated Table I layer names')
    sweep.add_argument("--m", type=int, help="ad-hoc GEMM M (with --n/--k)")
    sweep.add_argument("--n", type=int, help="ad-hoc GEMM N")
    sweep.add_argument("--k", type=int, help="ad-hoc GEMM K")
    sweep.add_argument("--scale", type=int, default=4,
                       help="divide each workload dimension by this (default 4)")
    sweep.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: CPU count)")
    sweep.add_argument("--fidelity", default="fast", choices=sorted(FIDELITIES))
    sweep.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk result cache")
    sweep.add_argument("--cache-dir", type=Path, default=None,
                       help="result-cache directory (default: ~/.cache/repro)")

    asm = sub.add_parser("asm", help="assemble .rasa text into a JSONL trace")
    asm.add_argument("source", type=Path)
    asm.add_argument("output", type=Path)

    dis = sub.add_parser("disasm", help="disassemble a JSONL trace to .rasa text")
    dis.add_argument("trace", type=Path)

    return parser


def _cmd_designs() -> int:
    rows = [
        (
            d.key,
            d.label,
            d.config.pe.name,
            d.config.control.value,
            f"{d.config.phys_rows}x{d.config.phys_cols}",
            d.config.serial_mm_latency,
        )
        for d in DESIGNS.values()
    ]
    print(format_table(
        ["key", "label", "PE", "control", "array", "serial mm latency"], rows
    ))
    return 0


def _cmd_fig(number: int, scale: int) -> int:
    settings = ExperimentSettings(scale=scale)
    if number == 1:
        print(fig1_toy_example().render())
    elif number == 2:
        print(fig2_utilization().render())
    elif number == 5:
        print(fig5_normalized_runtime(settings).render())
    elif number == 6:
        print(fig6_performance_per_area(settings).render())
    else:
        print(fig7_batch_sensitivity(settings).render())
    return 0


def _simulate(design_key: str, shape: GemmShape, fidelity: str = "fast"):
    program = generate_gemm_program(shape)
    return resolve_backend(design_key, fidelity=fidelity).prepare(program).run()


def _cmd_simulate(args) -> int:
    shape = GemmShape(m=args.m, n=args.n, k=args.k, name="cli")
    result = _simulate(args.design, shape, args.fidelity)
    print(f"design      : {get_design(args.design).label}")
    print(f"workload    : {shape}")
    print(f"fidelity    : {args.fidelity}")
    print(f"instructions: {result.instructions} ({result.mm_count} rasa_mm)")
    print(f"cycles      : {result.cycles} ({result.seconds * 1e3:.3f} ms @ 2 GHz)")
    print(f"IPC         : {result.ipc:.3f}")
    print(f"WLBP bypass : {result.bypass_count} ({result.bypass_rate:.0%})")
    return 0


def _sweep_designs(spec: str) -> List[str]:
    if spec == "all":
        return list(DESIGNS)
    keys = [key.strip() for key in spec.split(",") if key.strip()]
    for key in keys:
        get_design(key)  # raises ConfigError with the known keys
    if "baseline" not in keys:
        keys.insert(0, "baseline")  # normalization needs the baseline run
    return keys


def _sweep_shapes(spec: str, settings: ExperimentSettings) -> Dict[str, GemmShape]:
    table1 = workload_shapes(settings)
    if spec == "table1":
        return table1
    shapes: Dict[str, GemmShape] = {}
    for name in (part.strip() for part in spec.split(",")):
        if not name:
            continue
        if name not in table1:
            raise ReproError(
                f"unknown workload {name!r}; known: table1, {', '.join(table1)}"
            )
        shapes[name] = table1[name]
    return shapes


def _cmd_sweep(args) -> int:
    if (args.m, args.n, args.k) != (None, None, None):
        if None in (args.m, args.n, args.k):
            raise ReproError("--m/--n/--k must be given together")
        shapes = {"cli": GemmShape(m=args.m, n=args.n, k=args.k, name="cli")}
    else:
        shapes = _sweep_shapes(args.workloads, ExperimentSettings(scale=args.scale))
    design_keys = _sweep_designs(args.designs)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    runner = SweepRunner(cache=cache, workers=args.jobs)
    start = time.perf_counter()
    grid = runner.run_grid(design_keys, shapes, fidelity=args.fidelity)
    elapsed = time.perf_counter() - start

    normalized = normalized_runtimes(grid)
    headers = ["workload"] + [DESIGNS[key].label for key in design_keys]
    rows = []
    for workload in shapes:
        per_design = grid[workload]
        rows.append(
            [workload]
            + [
                f"{per_design[key].cycles} ({normalized[workload][key]:.3f})"
                for key in design_keys
            ]
        )
    if len(shapes) > 1:
        rows.append(
            ["GEOMEAN"]
            + [
                f"{geometric_mean(normalized[w][key] for w in shapes):.3f}"
                for key in design_keys
            ]
        )
    print(format_table(
        headers, rows,
        title=f"sweep — cycles (normalized to baseline), fidelity={args.fidelity}",
    ))
    jobs = len(shapes) * len(design_keys)
    if cache is not None:
        print(
            f"{jobs} simulations in {elapsed:.2f}s — cache: {cache.hits} hits, "
            f"{cache.misses} misses ({cache.path})"
        )
    else:
        print(f"{jobs} simulations in {elapsed:.2f}s — cache disabled")
    return 0


def _cmd_asm(source: Path, output: Path) -> int:
    program = assemble(source.read_text(), name=source.stem)
    save_trace(program, output)
    print(f"assembled {len(program)} instructions -> {output}")
    return 0


def _cmd_disasm(trace: Path) -> int:
    print(disassemble(load_trace(trace)), end="")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "designs":
            return _cmd_designs()
        if args.command == "table1":
            print(table1_report())
            return 0
        if args.command == "fig":
            return _cmd_fig(args.number, args.scale)
        if args.command == "area":
            print(area_energy_report(ExperimentSettings(scale=args.scale)).render())
            return 0
        if args.command == "report":
            from repro.experiments.report import full_report

            text = full_report(ExperimentSettings(scale=args.scale))
            if args.output is not None:
                args.output.write_text(text)
                print(f"wrote {args.output}")
            else:
                print(text)
            return 0
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "asm":
            return _cmd_asm(args.source, args.output)
        if args.command == "disasm":
            return _cmd_disasm(args.trace)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
