"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``designs``                       list the registered design points
- ``models``                        list the registered workload suites
- ``table1``                        print Table I (+ lowered GEMMs)
- ``fig {1,2,5,6,7}``               regenerate a paper figure (``fig 7
                                    --workloads <suite>`` sweeps whole-model
                                    batch curves instead of the FC layers)
- ``area``                          the Sec. V area/energy report
- ``simulate``                      run one GEMM on one design (any fidelity)
- ``sweep``                         run a (designs x workloads) grid — parallel
                                    and cache-backed via :mod:`repro.runtime` —
                                    a whole-model suite sweep
                                    (``--workloads resnet50|bert-base|dlrm|
                                    training|all``, dedup-aware), a suite
                                    *batch* sweep (``--batches 1,16,256``:
                                    Fig. 7-style curves per model), or one
                                    ad-hoc GEMM via ``--m/--n/--k``
- ``asm`` / ``disasm``              assemble ``.rasa`` text <-> JSONL traces

All simulation commands resolve their backend through the
:mod:`repro.runtime` registry; nothing in the CLI hand-wires a simulator.
Every command prints to stdout and returns a process exit code, so the CLI
is unit-testable by calling :func:`main` directly.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.engine.designs import DESIGNS, get_design
from repro.errors import ReproError
from repro.experiments.area_energy import area_energy_report
from repro.experiments.batch_sweep import fig7_batch_sensitivity
from repro.experiments.layer_table import table1_report
from repro.experiments.ppa_sweep import fig6_performance_per_area
from repro.experiments.runner import (
    ExperimentSettings,
    geometric_mean,
    workload_shapes,
)
from repro.experiments.runtime_sweep import fig5_normalized_runtime
from repro.experiments.suite_batch_sweep import curve_point_counts, suite_batch_sweep
from repro.experiments.toy import fig1_toy_example
from repro.experiments.utilization_sweep import fig2_utilization
from repro.isa.assembler import assemble, disassemble
from repro.isa.trace import load_trace, save_trace
from repro.runtime.cache import ResultCache
from repro.runtime.registry import FIDELITIES, resolve_backend
from repro.runtime.sweep import SweepRunner
from repro.utils.tables import format_table
from repro.workloads.codegen import generate_gemm_program
from repro.workloads.gemm import GemmShape
from repro.workloads.layers import TABLE1_LAYERS
from repro.workloads.suites import SUITES, get_suite, suite_names


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RASA (DAC 2021) reproduction: simulators, experiments, tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("designs", help="list the registered design points")
    sub.add_parser("table1", help="print Table I")

    models = sub.add_parser("models", help="list the registered workload suites")
    models.add_argument("--batch", type=int, default=None,
                        help="override the streamed-rows (batch) dimension")
    models.add_argument("--scale", type=int, default=1,
                        help="divide each GEMM dimension by this (default 1)")

    fig = sub.add_parser("fig", help="regenerate a paper figure")
    fig.add_argument("number", type=int, choices=(1, 2, 5, 6, 7))
    fig.add_argument("--scale", type=int, default=4,
                     help="divide each GEMM dimension by this factor (default 4)")
    fig.add_argument("--workloads", default=None,
                     help="fig 7 only: sweep whole model suites over the "
                          "batch axis instead of the six FC layers "
                          '(comma-separated suite names, or "all")')

    area = sub.add_parser("area", help="Sec. V area/energy report")
    area.add_argument("--scale", type=int, default=4)

    report = sub.add_parser("report", help="full reproduction report (markdown)")
    report.add_argument("--scale", type=int, default=4)
    report.add_argument("--fidelity", default="fast", choices=sorted(FIDELITIES),
                        help="backend for the suite sections E15/E16 "
                             "(default: fast)")
    report.add_argument("-o", "--output", type=Path, default=None,
                        help="write to a file instead of stdout")

    sim = sub.add_parser("simulate", help="run one GEMM on one design")
    sim.add_argument("--design", default="rasa-dmdb-wls", choices=sorted(DESIGNS))
    sim.add_argument("--m", type=int, required=True)
    sim.add_argument("--n", type=int, required=True)
    sim.add_argument("--k", type=int, required=True)
    sim.add_argument("--fidelity", default="fast", choices=sorted(FIDELITIES),
                     help="simulation backend (default: fast)")

    sweep = sub.add_parser(
        "sweep",
        help="run a (designs x workloads) grid, parallel and cache-backed",
    )
    sweep.add_argument("--designs", default="all",
                       help='"all" or comma-separated design keys (default: all)')
    sweep.add_argument("--workloads", default="table1",
                       help='"table1", comma-separated Table I layer names, '
                            'model suite names (resnet50, bert-base, dlrm, '
                            'training), or "all" (every suite)')
    sweep.add_argument("--m", type=int, help="ad-hoc GEMM M (with --n/--k)")
    sweep.add_argument("--n", type=int, help="ad-hoc GEMM N")
    sweep.add_argument("--k", type=int, help="ad-hoc GEMM K")
    sweep.add_argument("--batch", type=int, default=None,
                       help="override a suite's streamed-rows (batch) dimension")
    sweep.add_argument("--batches", default=None,
                       help="comma-separated batch sizes: sweep each suite "
                            "over the batch axis (Fig. 7-style curves; "
                            "suite workloads only)")
    sweep.add_argument("--scale", type=int, default=4,
                       help="divide each workload dimension by this (default 4)")
    sweep.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: CPU count)")
    sweep.add_argument("--fidelity", default="fast", choices=sorted(FIDELITIES))
    sweep.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk result cache")
    sweep.add_argument("--cache-dir", type=Path, default=None,
                       help="result-cache directory (default: ~/.cache/repro)")

    asm = sub.add_parser("asm", help="assemble .rasa text into a JSONL trace")
    asm.add_argument("source", type=Path)
    asm.add_argument("output", type=Path)

    dis = sub.add_parser("disasm", help="disassemble a JSONL trace to .rasa text")
    dis.add_argument("trace", type=Path)

    return parser


def _cmd_designs() -> int:
    rows = [
        (
            d.key,
            d.label,
            d.config.pe.name,
            d.config.control.value,
            f"{d.config.phys_rows}x{d.config.phys_cols}",
            d.config.serial_mm_latency,
        )
        for d in DESIGNS.values()
    ]
    print(format_table(
        ["key", "label", "PE", "control", "array", "serial mm latency"], rows
    ))
    return 0


def _cmd_models(args) -> int:
    rows = []
    for name in suite_names():
        spec = SUITES[name]
        suite = get_suite(name, batch=args.batch, scale=args.scale)
        batch = args.batch if args.batch is not None else spec.default_batch
        rows.append(
            (
                name,
                len(suite),
                len(suite.distinct()),
                f"{suite.dedup_factor:.1f}x",
                f"{suite.total_macs / 1e6:.0f}",
                batch if batch is not None else "per-layer",
                spec.description,
            )
        )
    print(format_table(
        ["suite", "GEMMs", "distinct", "dedup", "MMACs", "batch", "description"],
        rows,
        title="workload suites — sweep with: repro sweep --workloads <suite>",
    ))
    return 0


def _cmd_fig(args) -> int:
    number = args.number
    settings = ExperimentSettings(scale=args.scale)
    if args.workloads is not None and number != 7:
        raise ReproError("--workloads applies to fig 7 only")
    if number == 1:
        print(fig1_toy_example().render())
    elif number == 2:
        print(fig2_utilization().render())
    elif number == 5:
        print(fig5_normalized_runtime(settings).render())
    elif number == 6:
        print(fig6_performance_per_area(settings).render())
    elif args.workloads is not None:
        # Unknown names raise "unknown workload suite" from the runner.
        print(
            suite_batch_sweep(
                settings, suites=_suite_spec_names(args.workloads)
            ).render()
        )
    else:
        print(fig7_batch_sensitivity(settings).render())
    return 0


def _simulate(design_key: str, shape: GemmShape, fidelity: str = "fast"):
    program = generate_gemm_program(shape)
    return resolve_backend(design_key, fidelity=fidelity).prepare(program).run()


def _cmd_simulate(args) -> int:
    shape = GemmShape(m=args.m, n=args.n, k=args.k, name="cli")
    result = _simulate(args.design, shape, args.fidelity)
    print(f"design      : {get_design(args.design).label}")
    print(f"workload    : {shape}")
    print(f"fidelity    : {args.fidelity}")
    print(f"instructions: {result.instructions} ({result.mm_count} rasa_mm)")
    print(f"cycles      : {result.cycles} ({result.seconds * 1e3:.3f} ms @ 2 GHz)")
    print(f"IPC         : {result.ipc:.3f}")
    print(f"WLBP bypass : {result.bypass_count} ({result.bypass_rate:.0%})")
    return 0


def _sweep_designs(spec: str) -> List[str]:
    if spec == "all":
        return list(DESIGNS)
    keys = [key.strip() for key in spec.split(",") if key.strip()]
    for key in keys:
        get_design(key)  # raises ConfigError with the known keys
    if "baseline" not in keys:
        keys.insert(0, "baseline")  # normalization needs the baseline run
    return keys


def _split_spec(spec: str) -> List[str]:
    return [part.strip() for part in spec.split(",") if part.strip()]


def _is_suite_spec(spec: str, batch: Optional[int], batches: Optional[str] = None) -> bool:
    """Whether ``--workloads`` names model suites (vs Table I layers).

    Plain ``table1`` without ``--batch``/``--batches`` keeps the historical
    per-layer grid output; any other suite name — or ``table1`` rebatched,
    batch-swept, or mixed with other suites — takes the dedup-aware suite
    path.
    """
    parts = _split_spec(spec)
    if not parts or not any(part in SUITES or part == "all" for part in parts):
        return False  # layer names (or typos): _sweep_shapes reports them
    others = [part for part in parts if part not in SUITES and part != "all"]
    if not others:
        return (
            "all" in parts
            or parts != ["table1"]
            or batch is not None
            or batches is not None
        )
    unknown = [part for part in others if part not in TABLE1_LAYERS]
    if unknown:
        raise ReproError(
            f"unknown workload {unknown[0]!r}; known suites: "
            f"{', '.join(SUITES)}, all; known layers: {', '.join(TABLE1_LAYERS)}"
        )
    raise ReproError(
        "--workloads cannot mix suite names with Table I layer names; "
        f"suites: {', '.join(SUITES)}"
    )


def _sweep_shapes(spec: str, settings: ExperimentSettings) -> Dict[str, GemmShape]:
    table1 = workload_shapes(settings)
    if spec == "table1":
        return table1
    shapes: Dict[str, GemmShape] = {}
    for name in _split_spec(spec):
        if name not in table1:
            raise ReproError(
                f"unknown workload {name!r}; known: table1, "
                f"{', '.join(table1)}, suites: {', '.join(SUITES)}, all"
            )
        shapes[name] = table1[name]
    return shapes


def _normalized_cycle_cells(cycles: Dict[str, Dict[str, int]], design_keys: List[str]):
    """Shared "cycles (normalized to baseline)" cell assembly.

    ``cycles`` maps row label -> design key -> end-to-end cycles.  Returns
    per-row formatted cells plus the GEOMEAN cells (``None`` for
    single-row tables).  Both sweep output modes build on this, so their
    formatting and geomean semantics cannot diverge.
    """
    normalized = {
        row: {
            key: (per[key] / per["baseline"]) if per["baseline"] else 0.0
            for key in design_keys
        }
        for row, per in cycles.items()
    }
    cells = {
        row: [
            f"{cycles[row][key]} ({normalized[row][key]:.3f})" for key in design_keys
        ]
        for row in cycles
    }
    geomean = (
        [
            f"{geometric_mean(normalized[row][key] for row in cycles):.3f}"
            for key in design_keys
        ]
        if len(cycles) > 1
        else None
    )
    return cells, geomean


def _suite_spec_names(spec: str) -> List[str]:
    """Expand a suite ``--workloads`` spec into unique registered names."""
    names = [
        name
        for part in _split_spec(spec)
        for name in (suite_names() if part == "all" else [part])
    ]
    return list(dict.fromkeys(names))  # "dlrm,dlrm" / "all,dlrm" don't repeat


def _parse_batches(spec: str) -> List[int]:
    """Parse ``--batches`` into ints; the runner validates the values."""
    parts = _split_spec(spec)
    if not parts:
        raise ReproError("--batches needs at least one batch size")
    try:
        return [int(part) for part in parts]
    except ValueError:
        raise ReproError(
            f"--batches must be comma-separated integers, got {spec!r}"
        ) from None


def _cmd_sweep_suite_batches(args) -> int:
    """Suite batch mode: Fig. 7-style curves per model, dedup across batches."""
    names = _suite_spec_names(args.workloads)
    batches = _parse_batches(args.batches)
    design_keys = _sweep_designs(args.designs)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    runner = SweepRunner(cache=cache, workers=args.jobs)
    start = time.perf_counter()
    curves = runner.run_suites_batches(
        design_keys, names, batches, fidelity=args.fidelity, scale=args.scale
    )
    elapsed = time.perf_counter() - start

    headers = ["batch"] + [DESIGNS[key].label for key in design_keys]
    for name in names:
        per_design = curves[name]
        cycles = {
            batch: {
                key: per_design[key].totals[i].cycles for key in design_keys
            }
            for i, batch in enumerate(batches)
        }
        cells, geomean = _normalized_cycle_cells(cycles, design_keys)
        rows = [[batch] + cells[batch] for batch in batches]
        if geomean is not None:
            rows.append(["GEOMEAN"] + geomean)
        print(format_table(
            headers, rows,
            title=(
                f"suite batch sweep — {name}: end-to-end cycles "
                f"(normalized to baseline), fidelity={args.fidelity}"
            ),
        ))
    # Key dedup collapses points across suites AND batches (tile-padded
    # dims), so count the padded union against the naive per-batch total.
    distinct, expanded = curve_point_counts(
        names, batches, args.scale, design_count=len(design_keys)
    )
    line = (
        f"{distinct} distinct points for {expanded} per-batch suite points "
        f"({expanded / distinct:.1f}x cross-batch dedup) in {elapsed:.2f}s"
    )
    if cache is not None:
        line += (
            f" — {cache.misses} simulated, {cache.hits} cached ({cache.path})"
        )
    else:
        line += f" — {distinct} simulated, cache disabled"
    print(line)
    return 0


def _cmd_sweep_suites(args) -> int:
    """Suite mode: simulate distinct shapes only, report end-to-end totals."""
    names = _suite_spec_names(args.workloads)
    suites = [get_suite(n, batch=args.batch, scale=args.scale) for n in names]
    design_keys = _sweep_designs(args.designs)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    runner = SweepRunner(cache=cache, workers=args.jobs)
    start = time.perf_counter()
    totals = runner.run_suites(design_keys, suites, fidelity=args.fidelity)
    elapsed = time.perf_counter() - start

    cycles = {
        name: {key: per_design[key].cycles for key in design_keys}
        for name, per_design in totals.items()
    }
    cells, geomean = _normalized_cycle_cells(cycles, design_keys)
    headers = ["model", "GEMMs", "distinct"] + [
        DESIGNS[key].label for key in design_keys
    ]
    rows = []
    for name, per_design in totals.items():
        base = per_design["baseline"]
        rows.append([name, base.gemm_count, base.simulations] + cells[name])
    if geomean is not None:
        rows.append(["GEOMEAN", "", ""] + geomean)
    print(format_table(
        headers, rows,
        title=(
            "suite sweep — end-to-end cycles (normalized to baseline), "
            f"fidelity={args.fidelity}"
        ),
    ))
    # run_suites dedups across suites too — by tile-padded dims, the cache
    # key identity — so count the padded union.
    distinct_dims = {
        e.shape.tile_padded().dims for suite in suites for e in suite.distinct()
    }
    distinct = len(distinct_dims) * len(design_keys)
    layer_runs = sum(len(suite) for suite in suites) * len(design_keys)
    line = (
        f"{distinct} distinct points for {layer_runs} suite GEMM runs "
        f"({layer_runs / distinct:.1f}x dedup) in {elapsed:.2f}s"
    )
    if cache is not None:
        # The cache counters report what actually ran: one miss per
        # simulated point, one hit per point served from the store.
        line += (
            f" — {cache.misses} simulated, {cache.hits} cached ({cache.path})"
        )
    else:
        line += f" — {distinct} simulated, cache disabled"
    print(line)
    return 0


def _cmd_sweep(args) -> int:
    if args.batch is not None and args.batches is not None:
        raise ReproError(
            "--batch (one override) and --batches (a sweep axis) are "
            "mutually exclusive"
        )
    if (args.m, args.n, args.k) != (None, None, None):
        if None in (args.m, args.n, args.k):
            raise ReproError("--m/--n/--k must be given together")
        if args.batch is not None or args.batches is not None:
            raise ReproError(
                "--batch/--batches apply to suite workloads, not --m/--n/--k"
            )
        shapes = {"cli": GemmShape(m=args.m, n=args.n, k=args.k, name="cli")}
    elif _is_suite_spec(args.workloads, args.batch, args.batches):
        if args.batches is not None:
            return _cmd_sweep_suite_batches(args)
        return _cmd_sweep_suites(args)
    else:
        # Resolve the spec first so a typo'd suite name reports "unknown
        # workload", not a misleading --batch complaint.
        shapes = _sweep_shapes(args.workloads, ExperimentSettings(scale=args.scale))
        if args.batch is not None or args.batches is not None:
            raise ReproError(
                "--batch/--batches apply to suite workloads "
                f"({', '.join(SUITES)}), not Table I layer names"
            )
    design_keys = _sweep_designs(args.designs)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    runner = SweepRunner(cache=cache, workers=args.jobs)
    start = time.perf_counter()
    grid = runner.run_grid(design_keys, shapes, fidelity=args.fidelity)
    elapsed = time.perf_counter() - start

    cycles = {
        workload: {key: grid[workload][key].cycles for key in design_keys}
        for workload in shapes
    }
    cells, geomean = _normalized_cycle_cells(cycles, design_keys)
    headers = ["workload"] + [DESIGNS[key].label for key in design_keys]
    rows = [[workload] + cells[workload] for workload in shapes]
    if geomean is not None:
        rows.append(["GEOMEAN"] + geomean)
    print(format_table(
        headers, rows,
        title=f"sweep — cycles (normalized to baseline), fidelity={args.fidelity}",
    ))
    jobs = len(shapes) * len(design_keys)
    if cache is not None:
        print(
            f"{jobs} simulations in {elapsed:.2f}s — cache: {cache.hits} hits, "
            f"{cache.misses} misses ({cache.path})"
        )
    else:
        print(f"{jobs} simulations in {elapsed:.2f}s — cache disabled")
    return 0


def _cmd_asm(source: Path, output: Path) -> int:
    program = assemble(source.read_text(), name=source.stem)
    save_trace(program, output)
    print(f"assembled {len(program)} instructions -> {output}")
    return 0


def _cmd_disasm(trace: Path) -> int:
    print(disassemble(load_trace(trace)), end="")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "designs":
            return _cmd_designs()
        if args.command == "models":
            return _cmd_models(args)
        if args.command == "table1":
            print(table1_report())
            return 0
        if args.command == "fig":
            return _cmd_fig(args)
        if args.command == "area":
            print(area_energy_report(ExperimentSettings(scale=args.scale)).render())
            return 0
        if args.command == "report":
            from repro.experiments.report import full_report

            text = full_report(
                ExperimentSettings(scale=args.scale), fidelity=args.fidelity
            )
            if args.output is not None:
                args.output.write_text(text)
                print(f"wrote {args.output}")
            else:
                print(text)
            return 0
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "asm":
            return _cmd_asm(args.source, args.output)
        if args.command == "disasm":
            return _cmd_disasm(args.trace)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
