"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``designs``                       list the registered design points
- ``models``                        list the registered workload suites
- ``table1``                        print Table I (+ lowered GEMMs)
- ``fig {1,2,5,6,7}``               regenerate a paper figure (``fig 7
                                    --workloads <suite>`` sweeps whole-model
                                    batch curves instead of the FC layers)
- ``area``                          the Sec. V area/energy report
- ``simulate``                      run one GEMM on one design (any fidelity)
- ``sweep``                         run a (designs x workloads) grid — parallel
                                    and cache-backed via :mod:`repro.runtime` —
                                    a whole-model suite sweep
                                    (``--workloads resnet50|bert-base|
                                    bert-full|dlrm|training|resnet50-train|
                                    all``, dedup-aware), a suite *batch*
                                    sweep (``--batches 1,16,256``: Fig.
                                    7-style curves per model, with the
                                    role-aware ``--scale-batch`` /
                                    ``--scale-spatial`` lowering knobs), or
                                    one ad-hoc GEMM via ``--m/--n/--k``
- ``plan show|run|merge``           the declarative face of ``sweep``: build
                                    (or load) a :class:`SweepPlan`, inspect
                                    it, run it — whole or one deterministic
                                    ``--shard I/N`` slice — and merge shard
                                    reports bit-identically
- ``lint``                          statically verify generated programs: the
                                    :mod:`repro.analysis.verifier` dataflow
                                    pass (def-use, memory legality, hazard
                                    stats) plus the three-way counter oracle
                                    (static vs analytic vs fast) over one
                                    ``--m/--n/--k`` GEMM or
                                    ``--workloads <suite>|all``; ``--json``
                                    for machine-readable reports;
                                    ``--bounds`` adds the cycle-level bound
                                    oracle
- ``bounds``                        static cycle bounds per program x design:
                                    the :mod:`repro.analysis.bounds`
                                    dependence/resource lower bounds, greedy
                                    list-schedule upper bound, and bottleneck
                                    attribution, cross-checked against the
                                    analytic and fast models (exit 1 on any
                                    violated bound); same target flags as
                                    ``lint``
- ``serve``                         run the persistent sweep coordinator: a
                                    stdlib HTTP JSON API over a durable
                                    SQLite (WAL) job store with an explicit
                                    shard lifecycle state machine and a
                                    lease reaper (:mod:`repro.service`)
- ``submit``                        declare a plan (same axis flags as
                                    ``sweep``, or ``--plan file``) and post
                                    it to the coordinator as ``--shards N``
                                    leased shards; ``--wait -o report.json``
                                    fetches the merged report — byte-
                                    identical to a single-shot ``plan run``
- ``worker``                        pull-model shard worker: claim a leased
                                    shard, run it through ``Session.run``
                                    against the shared result cache,
                                    heartbeat the lease, stream the shard
                                    report back; survives poisoned shards,
                                    and killed workers' shards re-queue
- ``status``                        list submitted plans, or show one plan's
                                    per-shard lifecycle (state, attempts,
                                    worker, last error) and fetch its report
- ``asm`` / ``disasm``              assemble ``.rasa`` text <-> JSONL traces

Every sweep — ``sweep`` and ``plan run`` alike — is declared as a
:class:`repro.runtime.SweepPlan` and executed by one
:class:`repro.runtime.Session`; nothing in the CLI hand-wires a simulator.
Every command prints to stdout and returns a process exit code, so the CLI
is unit-testable by calling :func:`main` directly.  Library errors exit 1
with a one-line ``error: ...`` message — never a traceback.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.bounds import BoundsCheck, cross_check_bounds
from repro.analysis.verifier import (
    VerifierReport,
    cross_check_counters,
    lint_shape,
)
from repro.engine.designs import DESIGNS, get_design
from repro.errors import ReproError
from repro.experiments.area_energy import area_energy_report
from repro.experiments.batch_sweep import fig7_batch_sensitivity
from repro.experiments.layer_table import table1_report
from repro.experiments.ppa_sweep import fig6_performance_per_area
from repro.experiments.runner import (
    ExperimentSettings,
    geometric_mean,
    workload_shapes,
)
from repro.experiments.runtime_sweep import fig5_normalized_runtime
from repro.experiments.suite_batch_sweep import curve_point_counts, suite_batch_sweep
from repro.experiments.toy import fig1_toy_example
from repro.experiments.utilization_sweep import fig2_utilization
from repro.isa.assembler import assemble, disassemble
from repro.isa.trace import load_trace, save_trace
from repro.runtime.cache import ResultCache, default_cache_dir
from repro.runtime.plan import SweepPlan, SweepReport, _suite_name
from repro.runtime.registry import FIDELITIES, resolve_backend
from repro.runtime.session import Session
from repro.service.client import ServiceClient, validate_port
from repro.service.coordinator import Coordinator, ServiceConfig
from repro.service.server import DEFAULT_PORT, create_server
from repro.service.store import JobStore, ShardState
from repro.service.worker import ShardWorker
from repro.utils.tables import format_table
from repro.workloads.codegen import CodegenOptions, generate_gemm_program
from repro.workloads.gemm import GemmShape
from repro.workloads.layers import TABLE1_LAYERS
from repro.workloads.suites import SUITES, get_suite, suite_names


def _add_sweep_axes(parser: argparse.ArgumentParser) -> None:
    """The shared sweep-declaration flags (``sweep`` and ``plan show|run``).

    Defaults stay ``None`` so an explicitly typed flag is distinguishable
    from an omitted one — ``--plan`` must reject *any* axis flag, default
    value or not; :func:`_plan_from_args` resolves the real defaults.
    """
    parser.add_argument("--designs", default=None,
                        help='"all" or comma-separated design keys (default: all)')
    parser.add_argument("--workloads", default=None,
                        help='"table1" (default), comma-separated Table I '
                             'layer names, model suite names (resnet50, '
                             'bert-base, bert-full, dlrm, training, '
                             'resnet50-train), or "all" (every suite)')
    parser.add_argument("--m", type=int, help="ad-hoc GEMM M (with --n/--k)")
    parser.add_argument("--n", type=int, help="ad-hoc GEMM N")
    parser.add_argument("--k", type=int, help="ad-hoc GEMM K")
    parser.add_argument("--batch", type=int, default=None,
                        help="override a suite's streamed-rows (batch) dimension")
    parser.add_argument("--batches", default=None,
                        help="comma-separated batch sizes: sweep each suite "
                             "over the batch axis (Fig. 7-style curves; "
                             "suite workloads only)")
    parser.add_argument("--scale", type=int, default=None,
                        help="divide each workload dimension by this (default 4)")
    parser.add_argument("--scale-batch", type=int, default=None,
                        help="divide each op's batch-role dimension by this "
                             "(suite workloads only; applies at op lowering)")
    parser.add_argument("--scale-spatial", type=int, default=None,
                        help="divide each op's spatial/sequence extent by this "
                             "(conv output-spatial product, attention sequence "
                             "dims; suite workloads only)")
    parser.add_argument("--fidelity", default=None, choices=sorted(FIDELITIES),
                        help="simulation backend (default: fast)")


def _add_session_knobs(parser: argparse.ArgumentParser) -> None:
    """The shared execution flags (``sweep`` and ``plan run``)."""
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: CPU count)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="result-cache directory (default: ~/.cache/repro)")
    parser.add_argument("--verify", action="store_true",
                        help="statically lint each distinct program before "
                             "simulating (fails on any diagnostic)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RASA (DAC 2021) reproduction: simulators, experiments, tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("designs", help="list the registered design points")
    sub.add_parser("table1", help="print Table I")

    models = sub.add_parser("models", help="list the registered workload suites")
    models.add_argument("--batch", type=int, default=None,
                        help="override the streamed-rows (batch) dimension")
    models.add_argument("--scale", type=int, default=1,
                        help="divide each GEMM dimension by this (default 1)")
    models.add_argument("--lint", action="store_true",
                        help="statically verify each suite's distinct programs "
                             "and add a per-suite diagnostic count (0 means "
                             "clean; full-size suites take a while — combine "
                             "with --scale for a quick self-check)")

    fig = sub.add_parser("fig", help="regenerate a paper figure")
    fig.add_argument("number", type=int, choices=(1, 2, 5, 6, 7))
    fig.add_argument("--scale", type=int, default=4,
                     help="divide each GEMM dimension by this factor (default 4)")
    fig.add_argument("--workloads", default=None,
                     help="fig 7 only: sweep whole model suites over the "
                          "batch axis instead of the six FC layers "
                          '(comma-separated suite names, or "all")')

    area = sub.add_parser("area", help="Sec. V area/energy report")
    area.add_argument("--scale", type=int, default=4)

    report = sub.add_parser("report", help="full reproduction report (markdown)")
    report.add_argument("--scale", type=int, default=4)
    report.add_argument("--fidelity", default="fast", choices=sorted(FIDELITIES),
                        help="backend for the suite sections E15/E16 "
                             "(default: fast)")
    report.add_argument("-o", "--output", type=Path, default=None,
                        help="write to a file instead of stdout")

    sim = sub.add_parser("simulate", help="run one GEMM on one design")
    sim.add_argument("--design", default="rasa-dmdb-wls", choices=sorted(DESIGNS))
    sim.add_argument("--m", type=int, required=True)
    sim.add_argument("--n", type=int, required=True)
    sim.add_argument("--k", type=int, required=True)
    sim.add_argument("--fidelity", default="fast", choices=sorted(FIDELITIES),
                     help="simulation backend (default: fast)")

    sweep = sub.add_parser(
        "sweep",
        help="run a (designs x workloads) grid, parallel and cache-backed",
    )
    _add_sweep_axes(sweep)
    _add_session_knobs(sweep)

    plan = sub.add_parser(
        "plan",
        help="build, inspect, run (optionally one --shard of), and merge "
             "declarative sweep plans",
    )
    plan_sub = plan.add_subparsers(dest="plan_command", required=True)

    show = plan_sub.add_parser(
        "show", help="print a plan (summary + canonical JSON) without running it"
    )
    _add_sweep_axes(show)
    show.add_argument("--plan", dest="plan_file", type=Path, default=None,
                      help="load the plan from a JSON file instead of flags")
    show.add_argument("--shard", default=None,
                      help="annotate the plan as deterministic shard I/N")
    show.add_argument("-o", "--output", type=Path, default=None,
                      help="write canonical plan JSON to a file")

    run = plan_sub.add_parser(
        "run", help="execute a plan (or one --shard I/N slice of it)"
    )
    _add_sweep_axes(run)
    _add_session_knobs(run)
    run.add_argument("--plan", dest="plan_file", type=Path, default=None,
                     help="load the plan from a JSON file instead of flags")
    run.add_argument("--shard", default=None,
                     help="run deterministic shard I/N of the plan only")
    run.add_argument("-o", "--output", type=Path, default=None,
                     help="write the (shard) report as canonical JSON")

    merge = plan_sub.add_parser(
        "merge", help="merge shard reports into the full report, bit-identically"
    )
    merge.add_argument("reports", type=Path, nargs="+",
                       help="shard report JSON files (from: plan run -o)")
    merge.add_argument("-o", "--output", type=Path, default=None,
                       help="write the merged report as canonical JSON")

    serve = sub.add_parser(
        "serve",
        help="run the persistent sweep coordinator: an HTTP JSON API over a "
             "durable SQLite job store with leased shards and a lease reaper",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help=f"TCP port (default: {DEFAULT_PORT}; 0 picks a "
                            "free one and prints it)")
    serve.add_argument("--db", type=Path, default=None,
                       help="SQLite job-store path; reopening it resumes "
                            "in-flight plans (default: <cache dir>/service.db)")
    serve.add_argument("--lease", type=float, default=30.0,
                       help="seconds an unheartbeated shard lease lives "
                            "before the reaper re-queues it (default: 30)")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="claims per shard before it seals FAILED "
                            "(default: 3)")
    serve.add_argument("--reap-interval", type=float, default=1.0,
                       help="seconds between lease-reaper passes (default: 1)")

    submit = sub.add_parser(
        "submit",
        help="post a sweep plan to the coordinator as N leased shards "
             "(same axis flags as sweep, or --plan FILE)",
    )
    _add_sweep_axes(submit)
    submit.add_argument("--plan", dest="plan_file", type=Path, default=None,
                        help="load the plan from a JSON file instead of flags")
    submit.add_argument("--shards", type=int, default=2,
                        help="shard fan-out, clamped to the plan's distinct "
                             "point count (default: 2)")
    submit.add_argument("--priority", type=int, default=0,
                        help="claim-queue priority: higher-priority plans' "
                             "shards are leased first (default: 0)")
    submit.add_argument("--url", default=None,
                        help="coordinator URL (default: $REPRO_SERVICE_URL "
                             f"or http://127.0.0.1:{DEFAULT_PORT})")
    submit.add_argument("--wait", action="store_true",
                        help="block until every shard completes, then print "
                             "the merged tables (or write them with -o)")
    submit.add_argument("--timeout", type=float, default=None,
                        help="give up on --wait after this many seconds")
    submit.add_argument("--poll", type=float, default=0.5,
                        help="--wait poll interval in seconds (default: 0.5)")
    submit.add_argument("--id-only", action="store_true",
                        help="print only the plan id (for scripting)")
    submit.add_argument("-o", "--output", type=Path, default=None,
                        help="with --wait: write the merged report JSON, "
                             "byte-for-byte as the service serves it")

    worker = sub.add_parser(
        "worker",
        help="run a pull-model shard worker: claim leased shards from the "
             "coordinator, simulate them, stream the reports back",
    )
    worker.add_argument("--url", default=None,
                        help="coordinator URL (default: $REPRO_SERVICE_URL "
                             f"or http://127.0.0.1:{DEFAULT_PORT})")
    worker.add_argument("--jobs", type=int, default=None,
                        help="simulation processes per shard "
                             "(default: CPU count)")
    worker.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    worker.add_argument("--cache-dir", type=Path, default=None,
                        help="result-cache directory (default: ~/.cache/repro)")
    worker.add_argument("--poll", type=float, default=0.5,
                        help="seconds between claims when the queue is dry "
                             "(default: 0.5)")
    worker.add_argument("--idle-exit", type=float, default=None,
                        help="exit after this many consecutive dry seconds "
                             "(default: serve forever)")
    worker.add_argument("--max-shards", type=int, default=None,
                        help="stop after this many shards (default: unbounded)")
    worker.add_argument("--worker-id", default=None,
                        help="lease identity (default: <host>-<pid>)")
    worker.add_argument("--stall-seconds", type=float, default=0.0,
                        help="fault injection: sleep between claiming and "
                             "simulating, so tests can kill the worker "
                             "mid-shard (default: 0)")

    status = sub.add_parser(
        "status",
        help="list submitted plans, or show one plan's per-shard lifecycle "
             "and fetch its merged report",
    )
    status.add_argument("plan_id", nargs="?", default=None,
                        help="plan id from submit (omit to list every plan)")
    status.add_argument("--url", default=None,
                        help="coordinator URL (default: $REPRO_SERVICE_URL "
                             f"or http://127.0.0.1:{DEFAULT_PORT})")
    status.add_argument("--wait", action="store_true",
                        help="block until the plan completes first")
    status.add_argument("--timeout", type=float, default=None,
                        help="give up on --wait after this many seconds")
    status.add_argument("--poll", type=float, default=0.5,
                        help="--wait poll interval in seconds (default: 0.5)")
    status.add_argument("-o", "--output", type=Path, default=None,
                        help="write the merged report JSON, byte-for-byte as "
                             "served (the plan must be complete)")

    lint = sub.add_parser(
        "lint",
        help="statically verify generated programs (def-use, memory legality, "
             "hazards) and cross-check static counters against the analytic "
             "and fast models",
    )
    lint.add_argument("--m", type=int, help="ad-hoc GEMM M (with --n/--k)")
    lint.add_argument("--n", type=int, help="ad-hoc GEMM N")
    lint.add_argument("--k", type=int, help="ad-hoc GEMM K")
    lint.add_argument("--workloads", default=None,
                      help='comma-separated suite names or "all" '
                           "(default: table1)")
    lint.add_argument("--designs", default="all",
                      help='"all" or comma-separated design keys for the '
                           "counter oracle (default: all)")
    lint.add_argument("--batch", type=int, default=None,
                      help="override a suite's streamed-rows (batch) dimension")
    lint.add_argument("--scale", type=int, default=4,
                      help="divide each workload dimension by this (default 4)")
    lint.add_argument("--no-oracle", action="store_true",
                      help="skip the three-way counter cross-check "
                           "(diagnostics and hazards only)")
    lint.add_argument("--bounds", action="store_true",
                      help="also run the cycle-level bound oracle "
                           "(LB <= fast <= UB per design; see: repro bounds)")
    lint.add_argument("--json", action="store_true",
                      help="emit the full report as JSON instead of a table")

    bounds = sub.add_parser(
        "bounds",
        help="static cycle bounds per program x design: dependence/resource "
             "lower bounds, list-schedule upper bound, bottleneck "
             "attribution — cross-checked against the analytic and fast "
             "models (exit 1 on any violated bound)",
    )
    bounds.add_argument("--m", type=int, help="ad-hoc GEMM M (with --n/--k)")
    bounds.add_argument("--n", type=int, help="ad-hoc GEMM N")
    bounds.add_argument("--k", type=int, help="ad-hoc GEMM K")
    bounds.add_argument("--workloads", default=None,
                        help='comma-separated suite names or "all" '
                             "(default: table1)")
    bounds.add_argument("--designs", default="all",
                        help='"all" or comma-separated design keys '
                             "(default: all)")
    bounds.add_argument("--batch", type=int, default=None,
                        help="override a suite's streamed-rows (batch) "
                             "dimension")
    bounds.add_argument("--scale", type=int, default=4,
                        help="divide each workload dimension by this "
                             "(default 4)")
    bounds.add_argument("--json", action="store_true",
                        help="emit the full report as JSON instead of a table")

    asm = sub.add_parser("asm", help="assemble .rasa text into a JSONL trace")
    asm.add_argument("source", type=Path)
    asm.add_argument("output", type=Path)

    dis = sub.add_parser("disasm", help="disassemble a JSONL trace to .rasa text")
    dis.add_argument("trace", type=Path)

    return parser


def _cmd_designs() -> int:
    rows = [
        (
            d.key,
            d.label,
            d.config.pe.name,
            d.config.control.value,
            f"{d.config.phys_rows}x{d.config.phys_cols}",
            d.config.serial_mm_latency,
        )
        for d in DESIGNS.values()
    ]
    print(format_table(
        ["key", "label", "PE", "control", "array", "serial mm latency"], rows
    ))
    return 0


def _format_op_composition(composition: Dict[str, int]) -> str:
    """``{kind: count}`` -> "53 conv-fwd / 53 conv-dgrad / ..." (suite order)."""
    if not composition:
        return "pre-lowered"
    return " / ".join(f"{count} {kind}" for kind, count in composition.items())


def _cmd_models(args) -> int:
    rows = []
    lint_cache: Dict[Tuple[int, int, int], int] = {}  # padded dims -> diags
    total_diags = 0
    for name in suite_names():
        spec = SUITES[name]
        suite = get_suite(name, batch=args.batch, scale=args.scale)
        batch = args.batch if args.batch is not None else spec.default_batch
        row = [
            name,
            len(suite),
            len(suite.distinct()),
            f"{suite.dedup_factor:.1f}x",
            f"{suite.total_macs / 1e6:.0f}",
            batch if batch is not None else "per-layer",
            _format_op_composition(spec.op_composition(batch=args.batch)),
        ]
        if args.lint:
            # Distinct programs dedup across suites too (padded dims are
            # the program identity), so shared shapes lint exactly once.
            diags = 0
            for entry in suite.distinct():
                dims = entry.shape.tile_padded().dims
                if dims not in lint_cache:
                    lint_cache[dims] = len(lint_shape(entry.shape).diagnostics)
                diags += lint_cache[dims]
            total_diags += diags
            row.append(diags)
        row.append(spec.description)
        rows.append(tuple(row))
    headers = ["suite", "GEMMs", "distinct", "dedup", "MMACs", "batch", "ops"]
    if args.lint:
        headers.append("diags")
    headers.append("description")
    print(format_table(
        headers,
        rows,
        title="workload suites — sweep with: repro sweep --workloads <suite>",
    ))
    if args.lint:
        print(
            f"lint: {total_diags} diagnostic(s) across "
            f"{len(lint_cache)} distinct program(s) at scale 1/{args.scale}"
        )
        return 0 if not total_diags else 1
    return 0


def _cmd_fig(args) -> int:
    number = args.number
    settings = ExperimentSettings(scale=args.scale)
    if args.workloads is not None and number != 7:
        raise ReproError("--workloads applies to fig 7 only")
    if number == 1:
        print(fig1_toy_example().render())
    elif number == 2:
        print(fig2_utilization().render())
    elif number == 5:
        print(fig5_normalized_runtime(settings).render())
    elif number == 6:
        print(fig6_performance_per_area(settings).render())
    elif args.workloads is not None:
        # Unknown names raise "unknown workload suite" from the plan.
        print(
            suite_batch_sweep(
                settings, suites=_suite_spec_names(args.workloads)
            ).render()
        )
    else:
        print(fig7_batch_sensitivity(settings).render())
    return 0


def _simulate(design_key: str, shape: GemmShape, fidelity: str = "fast"):
    backend = resolve_backend(design_key, fidelity=fidelity)
    run_shape = getattr(backend, "run_shape", None)
    if run_shape is not None:  # shape-level fidelity (analytic): no program
        return run_shape(shape, CodegenOptions())
    program = generate_gemm_program(shape)
    return backend.prepare(program).run()


def _cmd_simulate(args) -> int:
    shape = GemmShape(m=args.m, n=args.n, k=args.k, name="cli")
    result = _simulate(args.design, shape, args.fidelity)
    print(f"design      : {get_design(args.design).label}")
    print(f"workload    : {shape}")
    print(f"fidelity    : {args.fidelity}")
    print(f"instructions: {result.instructions} ({result.mm_count} rasa_mm)")
    print(f"cycles      : {result.cycles} ({result.seconds * 1e3:.3f} ms @ 2 GHz)")
    print(f"IPC         : {result.ipc:.3f}")
    print(f"WLBP bypass : {result.bypass_count} ({result.bypass_rate:.0%})")
    return 0


def _sweep_designs(spec: str) -> List[str]:
    if spec == "all":
        return list(DESIGNS)
    keys = [key.strip() for key in spec.split(",") if key.strip()]
    for key in keys:
        get_design(key)  # raises ConfigError with the known keys
    if "baseline" not in keys:
        keys.insert(0, "baseline")  # normalization needs the baseline run
    return keys


def _split_spec(spec: str) -> List[str]:
    return [part.strip() for part in spec.split(",") if part.strip()]


def _is_suite_spec(spec: str, batch: Optional[int], batches: Optional[str] = None) -> bool:
    """Whether ``--workloads`` names model suites (vs Table I layers).

    Plain ``table1`` without ``--batch``/``--batches`` keeps the historical
    per-layer grid output; any other suite name — or ``table1`` rebatched,
    batch-swept, or mixed with other suites — takes the dedup-aware suite
    path.
    """
    parts = _split_spec(spec)
    if not parts or not any(part in SUITES or part == "all" for part in parts):
        return False  # layer names (or typos): _sweep_shapes reports them
    others = [part for part in parts if part not in SUITES and part != "all"]
    if not others:
        return (
            "all" in parts
            or parts != ["table1"]
            or batch is not None
            or batches is not None
        )
    unknown = [part for part in others if part not in TABLE1_LAYERS]
    if unknown:
        raise ReproError(
            f"unknown workload {unknown[0]!r}; known suites: "
            f"{', '.join(SUITES)}, all; known layers: {', '.join(TABLE1_LAYERS)}"
        )
    raise ReproError(
        "--workloads cannot mix suite names with Table I layer names; "
        f"suites: {', '.join(SUITES)}"
    )


def _sweep_shapes(spec: str, settings: ExperimentSettings) -> Dict[str, GemmShape]:
    table1 = workload_shapes(settings)
    if spec == "table1":
        return table1
    shapes: Dict[str, GemmShape] = {}
    for name in _split_spec(spec):
        if name not in table1:
            raise ReproError(
                f"unknown workload {name!r}; known: table1, "
                f"{', '.join(table1)}, suites: {', '.join(SUITES)}, all"
            )
        shapes[name] = table1[name]
    return shapes


def _normalized_cycle_cells(cycles: Dict[str, Dict[str, int]], design_keys: List[str]):
    """Shared "cycles (normalized to baseline)" cell assembly.

    ``cycles`` maps row label -> design key -> end-to-end cycles.  Returns
    per-row formatted cells plus the GEOMEAN cells (``None`` for
    single-row tables).  Both sweep output modes build on this, so their
    formatting and geomean semantics cannot diverge.  Plans without a
    ``baseline`` design print raw cycles (nothing to normalize against).
    """
    has_baseline = "baseline" in design_keys
    normalized = {
        row: {
            key: (per[key] / per["baseline"])
            if has_baseline and per["baseline"]
            else 0.0
            for key in design_keys
        }
        for row, per in cycles.items()
    }
    cells = {
        row: [
            f"{cycles[row][key]} ({normalized[row][key]:.3f})"
            if has_baseline
            else f"{cycles[row][key]}"
            for key in design_keys
        ]
        for row in cycles
    }
    geomean = (
        [
            f"{geometric_mean(normalized[row][key] for row in cycles):.3f}"
            for key in design_keys
        ]
        if len(cycles) > 1 and has_baseline
        else None
    )
    return cells, geomean


def _suite_spec_names(spec: str) -> List[str]:
    """Expand a suite ``--workloads`` spec into unique registered names."""
    names = [
        name
        for part in _split_spec(spec)
        for name in (suite_names() if part == "all" else [part])
    ]
    return list(dict.fromkeys(names))  # "dlrm,dlrm" / "all,dlrm" don't repeat


def _parse_batches(spec: str) -> List[int]:
    """Parse ``--batches`` into ints; the plan validates the values."""
    parts = _split_spec(spec)
    if not parts:
        raise ReproError("--batches needs at least one batch size")
    try:
        return [int(part) for part in parts]
    except ValueError:
        raise ReproError(
            f"--batches must be comma-separated integers, got {spec!r}"
        ) from None


def _parse_shard(spec: str) -> Tuple[int, int]:
    """Parse ``--shard I/N``; the plan validates the range."""
    parts = spec.split("/")
    if len(parts) == 2:
        try:
            return int(parts[0]), int(parts[1])
        except ValueError:
            pass
    raise ReproError(
        f"bad --shard spec {spec!r}; expected I/N with 0 <= I < N (e.g. 0/2)"
    )


def _session_from_args(args) -> Session:
    """One :class:`Session` per invocation, from the shared execution flags."""
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return Session(
        cache=cache, workers=args.jobs, verify=getattr(args, "verify", False)
    )


def _lint_designs(spec: str) -> List[str]:
    """Design keys for the lint counter oracle (no baseline insertion)."""
    if spec == "all":
        return list(DESIGNS)
    keys = _split_spec(spec)
    if not keys:
        raise ReproError('--designs needs "all" or comma-separated design keys')
    for key in keys:
        get_design(key)  # raises ConfigError with the known keys
    return keys


def _lint_targets(args) -> List[Tuple[str, GemmShape, Tuple[str, ...]]]:
    """Expand the lint flags into distinct programs: (label, shape, suites).

    Suites dedup by tile-padded dims — the program identity — so shapes
    shared across models lint and cross-check exactly once.
    """
    if (args.m, args.n, args.k) != (None, None, None):
        if None in (args.m, args.n, args.k):
            raise ReproError("--m/--n/--k must be given together")
        if args.workloads is not None:
            raise ReproError(
                "--m/--n/--k (one ad-hoc GEMM) and --workloads (suites) are "
                "mutually exclusive"
            )
        return [("cli", GemmShape(m=args.m, n=args.n, k=args.k, name="cli"), ())]
    spec = args.workloads if args.workloads is not None else "table1"
    targets: Dict[Tuple[int, int, int], Tuple[str, GemmShape, List[str]]] = {}
    for name in _suite_spec_names(spec):
        suite = get_suite(name, batch=args.batch, scale=args.scale)
        for entry in suite.distinct():
            dims = entry.shape.tile_padded().dims
            if dims not in targets:
                targets[dims] = (entry.shape.name or entry.layers[0],
                                 entry.shape, [name])
            elif name not in targets[dims][2]:
                targets[dims][2].append(name)
    return [(label, shape, tuple(suites))
            for label, shape, suites in targets.values()]


def _lint_report_json(
    label: str,
    shape: GemmShape,
    suites: Tuple[str, ...],
    report: VerifierReport,
    mismatches,
    bound_checks: Tuple[BoundsCheck, ...] = (),
) -> Dict:
    payload = {
        "workload": label,
        "suites": list(suites),
        "m": shape.m, "n": shape.n, "k": shape.k,
        "counters": dataclasses.asdict(report.counters),
        "hazards": dataclasses.asdict(report.hazards),
        "diagnostics": [dataclasses.asdict(d) for d in report.diagnostics],
        "counter_mismatches": [dataclasses.asdict(m) for m in mismatches],
    }
    if bound_checks:
        payload["bounds"] = [_bounds_check_json(c) for c in bound_checks]
    return payload


def _cmd_lint(args) -> int:
    design_keys = _lint_designs(args.designs)
    targets = _lint_targets(args)
    rows = []
    entries = []
    total_diags = total_mismatches = total_bound_violations = 0
    for label, shape, suites in targets:
        report = lint_shape(shape)
        mismatches = (
            () if args.no_oracle
            else cross_check_counters(shape, design_keys=design_keys)
        )
        bound_checks = (
            cross_check_bounds(shape, design_keys=design_keys)
            if args.bounds else ()
        )
        total_diags += len(report.diagnostics)
        total_mismatches += len(mismatches)
        total_bound_violations += sum(len(c.violations) for c in bound_checks)
        entries.append((label, shape, suites, report, mismatches, bound_checks))
        c, h = report.counters, report.hazards
        rows.append((
            label,
            f"{shape.m}x{shape.n}x{shape.k}",
            c.instructions,
            c.mm_count,
            c.weight_reuses,
            f"{h.raw}/{h.war}/{h.waw}",
            h.longest_raw_chain,
            h.max_live,
            len(report.diagnostics),
            "-" if args.no_oracle else ("ok" if not mismatches else "MISMATCH"),
        ))
    if args.json:
        payload = {
            "scale": args.scale,
            "designs": design_keys,
            "programs": [
                _lint_report_json(label, shape, suites, report, mismatches,
                                  bound_checks)
                for label, shape, suites, report, mismatches, bound_checks
                in entries
            ],
            "total_diagnostics": total_diags,
            "total_counter_mismatches": total_mismatches,
        }
        if args.bounds:
            payload["total_bound_violations"] = total_bound_violations
        print(json.dumps(payload, indent=2))
    else:
        print(format_table(
            ["workload", "mnk", "insts", "mm", "reuses", "raw/war/waw",
             "chain", "max live", "diags", "oracle"],
            rows,
            title="static verification — repro.analysis.verifier",
        ))
        shown_per_program = 8
        for label, _, _, report, mismatches, bound_checks in entries:
            for diag in report.diagnostics[:shown_per_program]:
                print(f"{label}: {diag}")
            hidden = len(report.diagnostics) - shown_per_program
            if hidden > 0:
                print(f"{label}: ... {hidden} more diagnostic(s) elided")
            for mismatch in mismatches:
                print(f"{label}: counter mismatch: {mismatch}")
            for check in bound_checks:
                for violation in check.violations:
                    print(f"{label}: bound violation: {violation}")
        oracle = (
            "oracle skipped"
            if args.no_oracle
            else f"{total_mismatches} counter mismatch(es) over "
                 f"{len(design_keys)} design(s)"
        )
        summary = f"{len(targets)} program(s): {total_diags} diagnostic(s), {oracle}"
        if args.bounds:
            summary += f", {total_bound_violations} bound violation(s)"
        print(summary)
    failed = total_diags or total_mismatches or total_bound_violations
    return 0 if not failed else 1


def _bounds_check_json(check: BoundsCheck) -> Dict:
    return {
        "design": check.design_key,
        "lower_bound": check.report.lower_bound,
        "upper_bound": check.report.upper_bound,
        "analytic_cycles": check.analytic_cycles,
        "fast_cycles": check.fast_cycles,
        "binding": check.report.binding,
        "lb_tightness": round(check.lb_tightness, 4),
        "ub_tightness": round(check.ub_tightness, 4),
        "components": {b.resource: b.cycles for b in check.report.components},
        "violations": [dataclasses.asdict(v) for v in check.violations],
    }


def _cmd_bounds(args) -> int:
    design_keys = _lint_designs(args.designs)
    targets = _lint_targets(args)
    rows = []
    entries = []
    total_violations = 0
    for label, shape, suites in targets:
        checks = cross_check_bounds(shape, design_keys=design_keys)
        entries.append((label, shape, suites, checks))
        for check in checks:
            total_violations += len(check.violations)
            rows.append((
                label,
                f"{shape.m}x{shape.n}x{shape.k}",
                check.design_key,
                check.report.lower_bound,
                check.analytic_cycles,
                check.fast_cycles,
                check.report.upper_bound,
                f"{check.lb_tightness:.3f}",
                check.report.binding,
                "ok" if check.ok else "VIOLATION",
            ))
    if args.json:
        print(json.dumps({
            "scale": args.scale,
            "designs": design_keys,
            "programs": [
                {
                    "workload": label,
                    "suites": list(suites),
                    "m": shape.m, "n": shape.n, "k": shape.k,
                    "checks": [_bounds_check_json(c) for c in checks],
                }
                for label, shape, suites, checks in entries
            ],
            "total_violations": total_violations,
        }, indent=2))
    else:
        print(format_table(
            ["workload", "mnk", "design", "LB", "analytic", "fast", "UB",
             "LB/fast", "binding", "check"],
            rows,
            title="static cycle bounds — repro.analysis.bounds",
        ))
        for label, _, _, checks in entries:
            for check in checks:
                for violation in check.violations:
                    print(f"{label}: bound violation: {violation}")
        print(
            f"{len(targets)} program(s) x {len(design_keys)} design(s): "
            f"{total_violations} bound violation(s)"
        )
    return 0 if not total_violations else 1


def _reject_axis_flags_with_plan_file(args) -> None:
    """``--plan`` loads the *whole* declaration; axis flags cannot amend it.

    Silently ignoring them would run a different sweep than the flags
    describe, so *any* axis flag next to ``--plan`` is an error — the
    parser keeps ``None`` defaults precisely so explicitly typed values
    (even ones matching a default, like ``--scale 4``) are caught.
    """
    overridden = [
        flag
        for flag, value in (
            ("--designs", args.designs),
            ("--workloads", args.workloads),
            ("--m", args.m),
            ("--n", args.n),
            ("--k", args.k),
            ("--batch", args.batch),
            ("--batches", args.batches),
            ("--scale", args.scale),
            ("--scale-batch", args.scale_batch),
            ("--scale-spatial", args.scale_spatial),
            ("--fidelity", args.fidelity),
        )
        if value is not None
    ]
    if overridden:
        raise ReproError(
            f"--plan loads the full declaration; {', '.join(overridden)} "
            "cannot amend a plan file — edit the JSON or rebuild it with "
            "'repro plan show ... -o'"
        )


def _plan_from_args(args) -> SweepPlan:
    """Build (or load) the :class:`SweepPlan` the shared axis flags declare.

    The decision tree mirrors ``repro sweep``: an ad-hoc ``--m/--n/--k``
    GEMM, a suite declaration (names / "all", optional ``--batch`` or
    ``--batches``), or a Table I layer grid.
    """
    if getattr(args, "plan_file", None) is not None:
        _reject_axis_flags_with_plan_file(args)
        return SweepPlan.from_json(args.plan_file.read_text())
    designs = args.designs if args.designs is not None else "all"
    workloads = args.workloads if args.workloads is not None else "table1"
    scale = args.scale if args.scale is not None else 4
    scale_batch = args.scale_batch if args.scale_batch is not None else 1
    scale_spatial = args.scale_spatial if args.scale_spatial is not None else 1
    fidelity = args.fidelity if args.fidelity is not None else "fast"
    if args.batch is not None and args.batches is not None:
        raise ReproError(
            "--batch (one override) and --batches (a sweep axis) are "
            "mutually exclusive"
        )
    if (args.m, args.n, args.k) != (None, None, None):
        if None in (args.m, args.n, args.k):
            raise ReproError("--m/--n/--k must be given together")
        if args.batch is not None or args.batches is not None:
            raise ReproError(
                "--batch/--batches apply to suite workloads, not --m/--n/--k"
            )
        if args.scale is not None:
            raise ReproError(
                "--scale does not apply to an ad-hoc --m/--n/--k GEMM; "
                "give the dimensions you want simulated"
            )
        if args.scale_batch is not None or args.scale_spatial is not None:
            raise ReproError(
                "--scale-batch/--scale-spatial apply to suite workloads "
                "(ops know their dimension roles), not --m/--n/--k"
            )
        return SweepPlan(
            designs=tuple(_sweep_designs(designs)),
            workloads=(("cli", GemmShape(m=args.m, n=args.n, k=args.k, name="cli")),),
            fidelity=fidelity,
        )
    if _is_suite_spec(workloads, args.batch, args.batches):
        return SweepPlan(
            designs=tuple(_sweep_designs(designs)),
            suites=tuple(_suite_spec_names(workloads)),
            batch=args.batch,
            batches=(
                tuple(_parse_batches(args.batches))
                if args.batches is not None
                else None
            ),
            scale=scale,
            scale_batch=scale_batch,
            scale_spatial=scale_spatial,
            fidelity=fidelity,
        )
    # Resolve the spec first so a typo'd suite name reports "unknown
    # workload", not a misleading --batch complaint.  The plan carries the
    # *unscaled* Table I shapes plus the scale knob (applied at expansion,
    # same floors), so its JSON records what will actually run.
    shapes = _sweep_shapes(workloads, ExperimentSettings(scale=1))
    if args.batch is not None or args.batches is not None:
        raise ReproError(
            "--batch/--batches apply to suite workloads "
            f"({', '.join(SUITES)}), not Table I layer names"
        )
    if args.scale_batch is not None or args.scale_spatial is not None:
        raise ReproError(
            "--scale-batch/--scale-spatial apply to suite workloads "
            f"({', '.join(SUITES)}), not Table I layer names"
        )
    return SweepPlan(
        designs=tuple(_sweep_designs(designs)),
        workloads=tuple(shapes.items()),
        scale=scale,
        fidelity=fidelity,
    )


# -- report rendering (shared by sweep and plan run/merge) -------------------------


def _cycles_label(design_keys: List[str]) -> str:
    """Honest table label: normalization only happens with a baseline."""
    if "baseline" in design_keys:
        return "cycles (normalized to baseline)"
    return "cycles"


def _print_grid_tables(report: SweepReport) -> None:
    """The (workload x design) table over the plan's named workloads."""
    plan = report.plan
    design_keys = list(plan.designs)
    grid = report.grid()
    cycles = {
        workload: {key: grid[workload][key].cycles for key in design_keys}
        for workload, _ in plan.workloads
    }
    cells, geomean = _normalized_cycle_cells(cycles, design_keys)
    headers = ["workload"] + [DESIGNS[key].label for key in design_keys]
    rows = [[workload] + cells[workload] for workload, _ in plan.workloads]
    if geomean is not None:
        rows.append(["GEOMEAN"] + geomean)
    print(format_table(
        headers, rows,
        title=f"sweep — {_cycles_label(design_keys)}, fidelity={plan.fidelity}",
    ))


def _print_suite_tables(report: SweepReport) -> None:
    """The per-suite end-to-end totals table."""
    plan = report.plan
    design_keys = list(plan.designs)
    totals = report.suite_totals()
    cycles = {
        name: {key: per_design[key].cycles for key in design_keys}
        for name, per_design in totals.items()
    }
    cells, geomean = _normalized_cycle_cells(cycles, design_keys)
    headers = ["model", "GEMMs", "distinct"] + [
        DESIGNS[key].label for key in design_keys
    ]
    rows = []
    for name, per_design in totals.items():
        first = per_design[design_keys[0]]
        rows.append([name, first.gemm_count, first.simulations] + cells[name])
    if geomean is not None:
        rows.append(["GEOMEAN", "", ""] + geomean)
    print(format_table(
        headers, rows,
        title=(
            f"suite sweep — end-to-end {_cycles_label(design_keys)}, "
            f"fidelity={plan.fidelity}"
        ),
    ))


def _print_curve_tables(report: SweepReport) -> None:
    """One Fig. 7-style table per suite along the plan's batch axis."""
    plan = report.plan
    design_keys = list(plan.designs)
    curves = report.batch_curves()
    headers = ["batch"] + [DESIGNS[key].label for key in design_keys]
    for name, per_design in curves.items():
        cycles = {
            batch: {
                key: per_design[key].totals[i].cycles for key in design_keys
            }
            for i, batch in enumerate(plan.batches)
        }
        cells, geomean = _normalized_cycle_cells(cycles, design_keys)
        rows = [[batch] + cells[batch] for batch in plan.batches]
        if geomean is not None:
            rows.append(["GEOMEAN"] + geomean)
        print(format_table(
            headers, rows,
            title=(
                f"suite batch sweep — {name}: end-to-end "
                f"{_cycles_label(design_keys)}, fidelity={plan.fidelity}"
            ),
        ))


def _print_report_tables(report: SweepReport) -> None:
    """Render every view the report's plan declares (complete reports only)."""
    if report.plan.jobs:
        print(f"{len(report.plan.jobs)} explicit jobs (no table view)")
    if report.plan.workloads:
        _print_grid_tables(report)
    if report.plan.suites:
        if report.plan.batches is not None:
            _print_curve_tables(report)
        else:
            _print_suite_tables(report)


def _cmd_sweep_suite_batches(args, plan: SweepPlan) -> int:
    """Suite batch mode: Fig. 7-style curves per model, dedup across batches."""
    session = _session_from_args(args)
    start = time.perf_counter()
    report = session.run(plan)
    elapsed = time.perf_counter() - start

    _print_curve_tables(report)
    # Key dedup collapses points across suites AND batches (tile-padded
    # dims), so count the padded union against the naive per-batch total.
    names = [_suite_name(entry) for entry in plan.suites]
    distinct, expanded = curve_point_counts(
        names, plan.batches, plan.scale, design_count=len(plan.designs),
        lowering=plan.lowering_config(),
    )
    line = (
        f"{distinct} distinct points for {expanded} per-batch suite points "
        f"({expanded / distinct:.1f}x cross-batch dedup) in {elapsed:.2f}s"
    )
    if session.cache is not None:
        line += (
            f" — {report.simulated} simulated, {report.cache_hits} cached "
            f"({session.cache.path})"
        )
    else:
        line += f" — {distinct} simulated, cache disabled"
    print(line)
    return 0


def _cmd_sweep_suites(args, plan: SweepPlan) -> int:
    """Suite mode: simulate distinct shapes only, report end-to-end totals."""
    session = _session_from_args(args)
    start = time.perf_counter()
    report = session.run(plan)
    elapsed = time.perf_counter() - start

    _print_suite_tables(report)
    # The plan dedups across suites too — by tile-padded dims, the cache
    # key identity — so count the padded union.
    built = [suite for suite, _ in plan.built_suites()]
    distinct_dims = {
        e.shape.tile_padded().dims for suite in built for e in suite.distinct()
    }
    distinct = len(distinct_dims) * len(plan.designs)
    layer_runs = sum(len(suite) for suite in built) * len(plan.designs)
    line = (
        f"{distinct} distinct points for {layer_runs} suite GEMM runs "
        f"({layer_runs / distinct:.1f}x dedup) in {elapsed:.2f}s"
    )
    if session.cache is not None:
        # The report counters record what actually ran: one simulation per
        # missed point, one hit per point served from the store.
        line += (
            f" — {report.simulated} simulated, {report.cache_hits} cached "
            f"({session.cache.path})"
        )
    else:
        line += f" — {distinct} simulated, cache disabled"
    print(line)
    return 0


def _cmd_sweep(args) -> int:
    plan = _plan_from_args(args)
    if plan.suites:
        if plan.batches is not None:
            return _cmd_sweep_suite_batches(args, plan)
        return _cmd_sweep_suites(args, plan)

    session = _session_from_args(args)
    start = time.perf_counter()
    report = session.run(plan)
    elapsed = time.perf_counter() - start

    _print_grid_tables(report)
    jobs = len(plan.workloads) * len(plan.designs)
    if session.cache is not None:
        print(
            f"{jobs} simulations in {elapsed:.2f}s — cache: "
            f"{report.cache_hits} hits, {report.simulated} misses "
            f"({session.cache.path})"
        )
    else:
        print(f"{jobs} simulations in {elapsed:.2f}s — cache disabled")
    return 0


def _sharded_plan_from_args(args) -> SweepPlan:
    plan = _plan_from_args(args)
    if args.shard is not None:
        index, count = _parse_shard(args.shard)
        plan = plan.shard(index, count)
    return plan


def _describe_plan(plan: SweepPlan) -> List[str]:
    distinct = plan.distinct_keys()
    owned = plan.shard_keys()
    lines = [
        f"designs   : {', '.join(plan.designs) or '(none)'}",
        f"workloads : {len(plan.workloads)} named GEMMs",
        "suites    : "
        + (", ".join(_suite_name(entry) for entry in plan.suites) or "(none)"),
        f"batch axis: {list(plan.batches) if plan.batches is not None else '-'}"
        + (f" (batch override {plan.batch})" if plan.batch is not None else ""),
        f"scale     : 1/{plan.scale}"
        + (f", batch 1/{plan.scale_batch}" if plan.scale_batch != 1 else "")
        + (f", spatial 1/{plan.scale_spatial}" if plan.scale_spatial != 1 else "")
        + f", fidelity: {plan.fidelity}",
        f"jobs      : {plan.job_count()} expanded, {len(distinct)} distinct "
        f"points ({plan.job_count() / len(distinct):.1f}x dedup)",
    ]
    if plan.shard_spec is not None:
        index, count = plan.shard_spec
        lines.append(
            f"shard     : {index}/{count} — owns {len(owned)} of "
            f"{len(distinct)} distinct points"
        )
    return lines


def _cmd_plan_show(args) -> int:
    plan = _sharded_plan_from_args(args)
    for line in _describe_plan(plan):
        print(line)
    if args.output is not None:
        args.output.write_text(plan.to_json())
        print(f"wrote {args.output}")
    else:
        print(plan.to_json(indent=2))
    return 0


def _cmd_plan_run(args) -> int:
    plan = _sharded_plan_from_args(args)
    if plan.shard_spec is not None and args.output is None and args.no_cache:
        # Refuse *before* simulating: a shard report that lands nowhere —
        # no file, no cache — cannot be merged and the work is wasted.
        raise ReproError(
            "a sharded run with --no-cache discards its results without "
            "-o/--output; add -o shard.json (or drop --no-cache)"
        )
    session = _session_from_args(args)
    start = time.perf_counter()
    report = session.run(plan)
    elapsed = time.perf_counter() - start
    if report.is_partial:
        index, count = plan.shard_spec
        total = len(plan.distinct_keys())
        print(
            f"shard {index}/{count}: ran {report.distinct_points} of {total} "
            f"distinct points ({report.job_count} jobs) in {elapsed:.2f}s — "
            f"{report.simulated} simulated, {report.cache_hits} cached"
        )
    else:
        _print_report_tables(report)
        print(
            f"{report.job_count} jobs, {report.distinct_points} distinct "
            f"points ({report.dedup_factor:.1f}x dedup) in {elapsed:.2f}s — "
            f"{report.simulated} simulated, {report.cache_hits} cached"
        )
    if args.output is not None:
        args.output.write_text(report.to_json())
        print(f"wrote {args.output}")
    return 0


def _cmd_plan_merge(args) -> int:
    reports = [SweepReport.from_json(path.read_text()) for path in args.reports]
    merged = reports[0].merge(*reports[1:])
    _print_report_tables(merged)
    print(
        f"merged {len(reports)} report(s): {merged.distinct_points} distinct "
        f"points, {merged.job_count} jobs"
    )
    if args.output is not None:
        args.output.write_text(merged.to_json())
        print(f"wrote {args.output}")
    return 0


def _cmd_plan(args) -> int:
    if args.plan_command == "show":
        return _cmd_plan_show(args)
    if args.plan_command == "run":
        return _cmd_plan_run(args)
    return _cmd_plan_merge(args)


# -- the sweep service (repro.service) ---------------------------------------------


def _cmd_serve(args) -> int:
    validate_port(args.port)
    db = args.db if args.db is not None else default_cache_dir() / "service.db"
    config = ServiceConfig(
        lease_seconds=args.lease,
        max_attempts=args.max_attempts,
        reap_interval=args.reap_interval,
    )
    store = JobStore(db)
    coordinator = Coordinator(store, config)
    server = create_server(coordinator, host=args.host, port=args.port)
    coordinator.start_reaper()
    print(
        f"sweep service at {server.url} — job store {db} "
        f"(lease {args.lease:g}s, {args.max_attempts} attempt(s)/shard)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        coordinator.stop()
        server.server_close()
        store.close()
    return 0


def _emit_served_report(
    client: ServiceClient, plan_id: str, output: Optional[Path], quiet: bool
) -> int:
    """Fetch the merged report exactly as served: the bytes are the contract."""
    text = client.plan_report(plan_id)
    if output is not None:
        output.write_text(text)
        if not quiet:
            print(f"wrote {output}")
    elif not quiet:
        _print_report_tables(SweepReport.from_json(text))
    return 0


def _cmd_submit(args) -> int:
    plan = _plan_from_args(args)
    client = ServiceClient(args.url)
    response = client.submit(plan, args.shards, args.priority)
    if args.id_only:
        print(response["plan_id"])
    else:
        verb = "submitted" if response["created"] else "already queued"
        priority = response.get("priority", 0)
        note = f" (priority {priority})" if priority else ""
        print(
            f"plan {response['plan_id']} {verb} at {client.url}: "
            f"{response['shard_count']} shard(s) over "
            f"{response['distinct_points']} distinct points "
            f"({response['job_count']} jobs){note}"
        )
    if not args.wait:
        return 0
    client.wait_for_plan(
        response["plan_id"], timeout=args.timeout, poll_interval=args.poll
    )
    return _emit_served_report(
        client, response["plan_id"], args.output, quiet=args.id_only
    )


def _cmd_worker(args) -> int:
    client = ServiceClient(args.url)

    def _make_session() -> Session:
        cache = None if args.no_cache else ResultCache(args.cache_dir)
        return Session(cache=cache, workers=args.jobs)

    worker = ShardWorker(
        client,
        session_factory=_make_session,
        worker_id=args.worker_id,
        poll_interval=args.poll,
        idle_exit=args.idle_exit,
        max_shards=args.max_shards,
        stall_seconds=args.stall_seconds,
    )
    try:
        worker.run()
    except KeyboardInterrupt:
        pass
    print(
        f"worker {worker.worker_id}: {worker.completed} shard(s) completed, "
        f"{worker.failed} failed/rejected"
    )
    return 0


def _shard_progress_cell(shard) -> str:
    """``done/total`` from heartbeat-reported progress, or ``-``.

    COMPLETED shards show their full total even if the final heartbeat
    never landed (completion implies every point ran).
    """
    completed = shard.get("progress_completed")
    total = shard.get("progress_total")
    if shard["state"] == "COMPLETED" and total is not None:
        return f"{total}/{total}"
    if completed is None or total is None:
        return "-"
    return f"{completed}/{total}"


def _cmd_status(args) -> int:
    client = ServiceClient(args.url)
    if args.plan_id is None:
        plans = client.list_plans()
        if not plans:
            print(f"no plans submitted to {client.url}")
            return 0
        rows = [
            (p["plan_id"], p["shard_count"], p.get("priority", 0), p["state"])
            for p in plans
        ]
        print(format_table(
            ["plan", "shards", "priority", "state"], rows,
            title=f"sweep service {client.url}",
        ))
        return 0
    if args.wait:
        client.wait_for_plan(
            args.plan_id, timeout=args.timeout, poll_interval=args.poll
        )
    status = client.plan_status(args.plan_id)
    counts = status["counts"]
    summary = ", ".join(
        f"{counts[state.value]} {state.value}" for state in ShardState
    )
    print(f"plan {args.plan_id}: {status['state']} ({summary})")
    rows = [
        (
            shard["shard_index"],
            shard["state"],
            shard["attempts"],
            _shard_progress_cell(shard),
            shard["worker_id"] or "-",
            shard["last_error"] or "-",
        )
        for shard in status["shards"]
    ]
    print(format_table(
        ["shard", "state", "attempts", "progress", "worker", "last error"], rows
    ))
    if args.output is not None:
        return _emit_served_report(client, args.plan_id, args.output, quiet=False)
    return 0


def _cmd_asm(source: Path, output: Path) -> int:
    program = assemble(source.read_text(), name=source.stem)
    save_trace(program, output)
    print(f"assembled {len(program)} instructions -> {output}")
    return 0


def _cmd_disasm(trace: Path) -> int:
    print(disassemble(load_trace(trace)), end="")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "designs":
            return _cmd_designs()
        if args.command == "models":
            return _cmd_models(args)
        if args.command == "table1":
            print(table1_report())
            return 0
        if args.command == "fig":
            return _cmd_fig(args)
        if args.command == "area":
            print(area_energy_report(ExperimentSettings(scale=args.scale)).render())
            return 0
        if args.command == "report":
            from repro.experiments.report import full_report

            text = full_report(
                ExperimentSettings(scale=args.scale), fidelity=args.fidelity
            )
            if args.output is not None:
                args.output.write_text(text)
                print(f"wrote {args.output}")
            else:
                print(text)
            return 0
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "plan":
            return _cmd_plan(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "worker":
            return _cmd_worker(args)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "bounds":
            return _cmd_bounds(args)
        if args.command == "asm":
            return _cmd_asm(args.source, args.output)
        if args.command == "disasm":
            return _cmd_disasm(args.trace)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
