"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``designs``                       list the registered design points
- ``table1``                        print Table I (+ lowered GEMMs)
- ``fig {1,2,5,6,7}``               regenerate a paper figure
- ``area``                          the Sec. V area/energy report
- ``simulate``                      run one GEMM on one design
- ``sweep``                         run one GEMM on every design
- ``asm`` / ``disasm``              assemble ``.rasa`` text <-> JSONL traces

Every command prints to stdout and returns a process exit code, so the CLI
is unit-testable by calling :func:`main` directly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.cpu.fast import FastCoreModel
from repro.engine.designs import DESIGNS, get_design
from repro.errors import ReproError
from repro.experiments.area_energy import area_energy_report
from repro.experiments.batch_sweep import fig7_batch_sensitivity
from repro.experiments.layer_table import table1_report
from repro.experiments.ppa_sweep import fig6_performance_per_area
from repro.experiments.runner import ExperimentSettings
from repro.experiments.runtime_sweep import fig5_normalized_runtime
from repro.experiments.toy import fig1_toy_example
from repro.experiments.utilization_sweep import fig2_utilization
from repro.isa.assembler import assemble, disassemble
from repro.isa.trace import load_trace, save_trace
from repro.utils.tables import format_table
from repro.workloads.codegen import generate_gemm_program
from repro.workloads.gemm import GemmShape


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RASA (DAC 2021) reproduction: simulators, experiments, tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("designs", help="list the registered design points")
    sub.add_parser("table1", help="print Table I")

    fig = sub.add_parser("fig", help="regenerate a paper figure")
    fig.add_argument("number", type=int, choices=(1, 2, 5, 6, 7))
    fig.add_argument("--scale", type=int, default=4,
                     help="divide each GEMM dimension by this factor (default 4)")

    area = sub.add_parser("area", help="Sec. V area/energy report")
    area.add_argument("--scale", type=int, default=4)

    report = sub.add_parser("report", help="full reproduction report (markdown)")
    report.add_argument("--scale", type=int, default=4)
    report.add_argument("-o", "--output", type=Path, default=None,
                        help="write to a file instead of stdout")

    sim = sub.add_parser("simulate", help="run one GEMM on one design")
    sim.add_argument("--design", default="rasa-dmdb-wls", choices=sorted(DESIGNS))
    sim.add_argument("--m", type=int, required=True)
    sim.add_argument("--n", type=int, required=True)
    sim.add_argument("--k", type=int, required=True)

    sweep = sub.add_parser("sweep", help="run one GEMM on every design")
    sweep.add_argument("--m", type=int, required=True)
    sweep.add_argument("--n", type=int, required=True)
    sweep.add_argument("--k", type=int, required=True)

    asm = sub.add_parser("asm", help="assemble .rasa text into a JSONL trace")
    asm.add_argument("source", type=Path)
    asm.add_argument("output", type=Path)

    dis = sub.add_parser("disasm", help="disassemble a JSONL trace to .rasa text")
    dis.add_argument("trace", type=Path)

    return parser


def _cmd_designs() -> int:
    rows = [
        (
            d.key,
            d.label,
            d.config.pe.name,
            d.config.control.value,
            f"{d.config.phys_rows}x{d.config.phys_cols}",
            d.config.serial_mm_latency,
        )
        for d in DESIGNS.values()
    ]
    print(format_table(
        ["key", "label", "PE", "control", "array", "serial mm latency"], rows
    ))
    return 0


def _cmd_fig(number: int, scale: int) -> int:
    settings = ExperimentSettings(scale=scale)
    if number == 1:
        print(fig1_toy_example().render())
    elif number == 2:
        print(fig2_utilization().render())
    elif number == 5:
        print(fig5_normalized_runtime(settings).render())
    elif number == 6:
        print(fig6_performance_per_area(settings).render())
    else:
        print(fig7_batch_sensitivity(settings).render())
    return 0


def _simulate(design_key: str, shape: GemmShape):
    program = generate_gemm_program(shape)
    model = FastCoreModel(engine=get_design(design_key).config)
    return model.run(program)


def _cmd_simulate(args) -> int:
    shape = GemmShape(m=args.m, n=args.n, k=args.k, name="cli")
    result = _simulate(args.design, shape)
    print(f"design      : {get_design(args.design).label}")
    print(f"workload    : {shape}")
    print(f"instructions: {result.instructions} ({result.mm_count} rasa_mm)")
    print(f"cycles      : {result.cycles} ({result.seconds * 1e3:.3f} ms @ 2 GHz)")
    print(f"IPC         : {result.ipc:.3f}")
    print(f"WLBP bypass : {result.bypass_count} ({result.bypass_rate:.0%})")
    return 0


def _cmd_sweep(args) -> int:
    shape = GemmShape(m=args.m, n=args.n, k=args.k, name="cli")
    results = {key: _simulate(key, shape) for key in DESIGNS}
    base = results["baseline"]
    rows = [
        (
            DESIGNS[key].label,
            r.cycles,
            f"{r.normalized_to(base):.3f}",
            f"{r.bypass_rate:.2f}",
        )
        for key, r in results.items()
    ]
    print(format_table(["design", "cycles", "normalized", "bypass rate"], rows,
                       title=str(shape)))
    return 0


def _cmd_asm(source: Path, output: Path) -> int:
    program = assemble(source.read_text(), name=source.stem)
    save_trace(program, output)
    print(f"assembled {len(program)} instructions -> {output}")
    return 0


def _cmd_disasm(trace: Path) -> int:
    print(disassemble(load_trace(trace)), end="")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "designs":
            return _cmd_designs()
        if args.command == "table1":
            print(table1_report())
            return 0
        if args.command == "fig":
            return _cmd_fig(args.number, args.scale)
        if args.command == "area":
            print(area_energy_report(ExperimentSettings(scale=args.scale)).render())
            return 0
        if args.command == "report":
            from repro.experiments.report import full_report

            text = full_report(ExperimentSettings(scale=args.scale))
            if args.output is not None:
                args.output.write_text(text)
                print(f"wrote {args.output}")
            else:
                print(text)
            return 0
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "asm":
            return _cmd_asm(args.source, args.output)
        if args.command == "disasm":
            return _cmd_disasm(args.trace)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
