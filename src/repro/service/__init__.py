"""``repro.service`` — the persistent sweep service.

Everything below :mod:`repro.runtime` treats a sweep as one in-process
call; this subsystem turns it into a long-running, multi-host *service*
built from four layers (bottom up):

- :mod:`repro.service.store` — durable SQLite (WAL) job store: submitted
  plans, their shards, and an explicit shard lifecycle state machine
  (``PENDING → ACTIVE → COMPLETED | FAILED``, ``ACTIVE → PENDING`` on
  retry/lease expiry; terminal states sealed, illegal transitions raise);
- :mod:`repro.service.coordinator` — policy: idempotent plan submission,
  shard leases with deadlines, a bounded retry budget, a lease reaper
  that re-queues shards whose worker died, and bit-identical shard-report
  merging the moment a plan completes;
- :mod:`repro.service.server` — a stdlib ``ThreadingHTTPServer`` JSON API
  over the coordinator (``repro serve``);
- :mod:`repro.service.worker` / :mod:`repro.service.client` — pull-model
  workers that run shards through the existing
  :class:`repro.runtime.session.Session` against the shared result cache,
  and the urllib client the workers and the CLI share.

The correctness oracle is the runtime's own shard determinism: the merged
report the coordinator serves for any plan is byte-identical to a
single-shot ``Session.run`` of that plan.
"""

from repro.service.store import (
    JobStore,
    LEGAL_TRANSITIONS,
    PlanRow,
    ShardRow,
    ShardState,
    TERMINAL_STATES,
    check_transition,
)
from repro.service.coordinator import Coordinator, ServiceConfig
from repro.service.server import DEFAULT_PORT, ServiceHTTPServer, create_server
from repro.service.client import (
    SERVICE_URL_ENV,
    ServiceClient,
    service_url,
    validate_port,
)
from repro.service.worker import ShardWorker, default_worker_id

__all__ = [
    "JobStore",
    "LEGAL_TRANSITIONS",
    "PlanRow",
    "ShardRow",
    "ShardState",
    "TERMINAL_STATES",
    "check_transition",
    "Coordinator",
    "ServiceConfig",
    "DEFAULT_PORT",
    "ServiceHTTPServer",
    "create_server",
    "SERVICE_URL_ENV",
    "ServiceClient",
    "service_url",
    "validate_port",
    "ShardWorker",
    "default_worker_id",
]
