"""Durable SQLite job store behind the sweep service.

One coordinator process owns one :class:`JobStore`.  The store holds the
submitted plans (their canonical :meth:`repro.runtime.plan.SweepPlan.to_json`
text), one row per shard of each plan, and the full lifecycle of every
shard as an **explicit legal-transition matrix**:

.. code-block:: text

    PENDING   → ACTIVE       (claim: a worker leases the shard)
    ACTIVE    → PENDING      (retry: worker-reported failure or lease expiry,
                              while the retry budget lasts)
    ACTIVE    → COMPLETED    (the worker streamed back its shard report)
    ACTIVE    → FAILED       (retry budget exhausted)

``COMPLETED`` and ``FAILED`` are terminal and sealed — every transition out
of them (and every other pair not listed) raises
:class:`repro.errors.TransitionError`.  All mutators funnel through one
:func:`check_transition` gate, so the matrix cannot be bypassed.

Durability is SQLite in WAL mode: every transition commits before the call
returns, so a coordinator that dies mid-run restarts with the exact shard
states it last acknowledged.  ``ACTIVE`` rows whose worker died simply keep
their lease deadline; the reaper re-queues them once the deadline passes.

Leases carry a ``worker_id``: ``complete``/``fail``/``heartbeat`` from a
worker that no longer holds the lease (it expired and the shard was
re-queued or re-claimed) are rejected, so a zombie worker can never corrupt
a shard another worker owns.

Concurrency model: the store is single-process (HTTP handler threads plus
the reaper thread inside the coordinator), serialized by one lock around
the shared connection.  Workers on other hosts go through the HTTP API,
never the file.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import sqlite3
import threading
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from repro.errors import ServiceError, ServiceLookupError, TransitionError


class ShardState(enum.Enum):
    """Lifecycle states of one shard of one submitted plan."""

    PENDING = "PENDING"
    ACTIVE = "ACTIVE"
    COMPLETED = "COMPLETED"
    FAILED = "FAILED"


#: The full legal-transition matrix.  Anything not listed here is illegal;
#: terminal states map to the empty set (sealed).
LEGAL_TRANSITIONS: Dict[ShardState, FrozenSet[ShardState]] = {
    ShardState.PENDING: frozenset({ShardState.ACTIVE}),
    ShardState.ACTIVE: frozenset(
        {ShardState.PENDING, ShardState.COMPLETED, ShardState.FAILED}
    ),
    ShardState.COMPLETED: frozenset(),
    ShardState.FAILED: frozenset(),
}

#: States no transition leaves.
TERMINAL_STATES: FrozenSet[ShardState] = frozenset(
    state for state, targets in LEGAL_TRANSITIONS.items() if not targets
)


def check_transition(old: ShardState, new: ShardState) -> None:
    """Raise :class:`TransitionError` unless ``old → new`` is in the matrix.

    Self-transitions are illegal too — every legal edge changes state, so a
    repeated ``complete`` (or a double claim) always surfaces as an error
    instead of silently rewriting a row.
    """
    if new not in LEGAL_TRANSITIONS[old]:
        sealed = " (terminal states are sealed)" if old in TERMINAL_STATES else ""
        raise TransitionError(
            f"illegal shard transition {old.value} -> {new.value}{sealed}"
        )


@dataclasses.dataclass(frozen=True)
class PlanRow:
    """One submitted plan: identity, canonical JSON, and shard fan-out.

    ``priority`` orders competing plans in the claim queue (higher first;
    ties fall back to shard id, i.e. submission order).  It is scheduling
    policy, not work identity — it is deliberately *not* part of
    :func:`plan_identity`, so resubmitting the same plan at a different
    priority is still idempotent.
    """

    plan_id: str
    plan_json: str
    shard_count: int
    submitted_at: float
    report_json: Optional[str] = None
    priority: int = 0


@dataclasses.dataclass(frozen=True)
class ShardRow:
    """One shard's lifecycle row.

    ``progress_completed``/``progress_total`` are the worker's last
    heartbeat-reported distinct-point progress (``None`` until the first
    report, and reset on requeue — a fresh claim starts from an honest
    blank slate).
    """

    shard_id: int
    plan_id: str
    shard_index: int
    shard_count: int
    state: ShardState
    attempts: int
    worker_id: Optional[str]
    lease_deadline: Optional[float]
    report_json: Optional[str]
    last_error: Optional[str]
    progress_completed: Optional[int] = None
    progress_total: Optional[int] = None


def plan_identity(plan_json: str, shard_count: int) -> str:
    """Deterministic plan id: hash of (canonical plan JSON, shard count).

    Submitting the same plan with the same fan-out twice is idempotent —
    the second submit returns the existing job instead of duplicating the
    work queue.
    """
    blob = f"{shard_count}:{plan_json}".encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


_SCHEMA = """
CREATE TABLE IF NOT EXISTS plans (
    plan_id      TEXT PRIMARY KEY,
    plan_json    TEXT NOT NULL,
    shard_count  INTEGER NOT NULL,
    submitted_at REAL NOT NULL,
    report_json  TEXT,
    priority     INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS shards (
    shard_id           INTEGER PRIMARY KEY AUTOINCREMENT,
    plan_id            TEXT NOT NULL REFERENCES plans(plan_id),
    shard_index        INTEGER NOT NULL,
    state              TEXT NOT NULL DEFAULT 'PENDING',
    attempts           INTEGER NOT NULL DEFAULT 0,
    worker_id          TEXT,
    lease_deadline     REAL,
    report_json        TEXT,
    last_error         TEXT,
    progress_completed INTEGER,
    progress_total     INTEGER,
    UNIQUE (plan_id, shard_index)
);
CREATE INDEX IF NOT EXISTS shards_by_state ON shards(state);
"""

#: Columns added after the v1 schema shipped; an existing store file gains
#: them in place on open (SQLite ``ALTER TABLE ADD COLUMN`` is metadata-only,
#: so migration is cheap and idempotent).
_MIGRATIONS: Tuple[Tuple[str, str, str], ...] = (
    ("plans", "priority", "INTEGER NOT NULL DEFAULT 0"),
    ("shards", "progress_completed", "INTEGER"),
    ("shards", "progress_total", "INTEGER"),
)


class JobStore:
    """SQLite-backed plan/shard store with the lifecycle matrix enforced.

    Every public method is one atomic, committed step; reopening the same
    path resumes exactly where the previous process stopped.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._lock, self._conn:
            self._conn.executescript(_SCHEMA)
            for table, column, decl in _MIGRATIONS:
                present = {
                    info["name"]
                    for info in self._conn.execute(f"PRAGMA table_info({table})")
                }
                if column not in present:
                    self._conn.execute(
                        f"ALTER TABLE {table} ADD COLUMN {column} {decl}"
                    )

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- plans ---------------------------------------------------------------------

    def submit_plan(
        self, plan_json: str, shard_count: int, now: float, priority: int = 0
    ) -> Tuple[PlanRow, bool]:
        """Insert a plan and its shard rows; idempotent on the plan identity.

        Returns ``(row, created)`` — ``created`` is ``False`` when the very
        same (plan, shard count) was already submitted.  ``priority`` orders
        the claim queue (higher first) but is not part of the identity;
        resubmitting an existing plan keeps its original priority.
        """
        if shard_count < 1:
            raise ServiceError(
                f"shard count must be a positive integer, got {shard_count!r}"
            )
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise ServiceError(f"priority must be an integer, got {priority!r}")
        plan_id = plan_identity(plan_json, shard_count)
        with self._lock, self._conn:
            existing = self._conn.execute(
                "SELECT * FROM plans WHERE plan_id = ?", (plan_id,)
            ).fetchone()
            if existing is not None:
                return _plan_row(existing), False
            self._conn.execute(
                "INSERT INTO plans"
                " (plan_id, plan_json, shard_count, submitted_at, priority)"
                " VALUES (?, ?, ?, ?, ?)",
                (plan_id, plan_json, shard_count, now, priority),
            )
            self._conn.executemany(
                "INSERT INTO shards (plan_id, shard_index, state) VALUES (?, ?, ?)",
                [
                    (plan_id, index, ShardState.PENDING.value)
                    for index in range(shard_count)
                ],
            )
        return (
            PlanRow(
                plan_id=plan_id,
                plan_json=plan_json,
                shard_count=shard_count,
                submitted_at=now,
                priority=priority,
            ),
            True,
        )

    def get_plan(self, plan_id: str) -> PlanRow:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM plans WHERE plan_id = ?", (plan_id,)
            ).fetchone()
        if row is None:
            raise ServiceLookupError(f"unknown plan {plan_id!r}")
        return _plan_row(row)

    def list_plans(self) -> List[PlanRow]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM plans ORDER BY submitted_at, plan_id"
            ).fetchall()
        return [_plan_row(row) for row in rows]

    def store_plan_report(self, plan_id: str, report_json: str) -> None:
        """Persist the merged report of a fully completed plan."""
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "UPDATE plans SET report_json = ? WHERE plan_id = ?",
                (report_json, plan_id),
            )
        if cursor.rowcount != 1:
            raise ServiceLookupError(f"unknown plan {plan_id!r}")

    # -- shard reads ----------------------------------------------------------------

    def shards(self, plan_id: str) -> List[ShardRow]:
        self.get_plan(plan_id)  # raises ServiceLookupError on unknown ids
        with self._lock:
            rows = self._conn.execute(
                "SELECT s.*, p.shard_count FROM shards s"
                " JOIN plans p ON p.plan_id = s.plan_id"
                " WHERE s.plan_id = ? ORDER BY s.shard_index",
                (plan_id,),
            ).fetchall()
        return [_shard_row(row) for row in rows]

    def get_shard(self, shard_id: int) -> ShardRow:
        with self._lock:
            row = self._fetch_shard(shard_id)
        return _shard_row(row)

    def state_counts(self, plan_id: str) -> Dict[ShardState, int]:
        """``{state: shard count}`` with every state present (zeros kept)."""
        counts = {state: 0 for state in ShardState}
        for shard in self.shards(plan_id):
            counts[shard.state] += 1
        return counts

    def expired_shards(self, now: float) -> List[ShardRow]:
        """Every ACTIVE shard whose lease deadline has passed."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT s.*, p.shard_count FROM shards s"
                " JOIN plans p ON p.plan_id = s.plan_id"
                " WHERE s.state = ? AND s.lease_deadline < ?"
                " ORDER BY s.shard_id",
                (ShardState.ACTIVE.value, now),
            ).fetchall()
        return [_shard_row(row) for row in rows]

    # -- shard transitions -----------------------------------------------------------

    def claim_shard(
        self, worker_id: str, lease_seconds: float, now: float
    ) -> Optional[ShardRow]:
        """Lease the best PENDING shard: PENDING → ACTIVE, attempts += 1.

        "Best" means highest plan priority first, then lowest shard id
        (submission order) as the tie-break, so equal-priority plans drain
        first-come-first-served.  Returns ``None`` when nothing is pending
        (terminal and leased shards are never handed out).
        """
        if not worker_id:
            raise ServiceError("claim needs a non-empty worker id")
        deadline = now + lease_seconds
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT s.*, p.shard_count FROM shards s"
                " JOIN plans p ON p.plan_id = s.plan_id"
                " WHERE s.state = ?"
                " ORDER BY p.priority DESC, s.shard_id LIMIT 1",
                (ShardState.PENDING.value,),
            ).fetchone()
            if row is None:
                return None
            check_transition(ShardState(row["state"]), ShardState.ACTIVE)
            self._conn.execute(
                "UPDATE shards SET state = ?, attempts = attempts + 1,"
                " worker_id = ?, lease_deadline = ? WHERE shard_id = ?",
                (ShardState.ACTIVE.value, worker_id, deadline, row["shard_id"]),
            )
            updated = self._fetch_shard(row["shard_id"])
        return _shard_row(updated)

    def heartbeat_shard(
        self,
        shard_id: int,
        worker_id: str,
        lease_seconds: float,
        now: float,
        completed: Optional[int] = None,
        total: Optional[int] = None,
    ) -> float:
        """Extend an ACTIVE lease the worker still holds; returns the deadline.

        When the worker reports progress (``completed`` distinct points out
        of ``total``) it is recorded on the shard row for ``repro status``;
        a heartbeat without progress leaves the last report in place.
        """
        deadline = now + lease_seconds
        with self._lock, self._conn:
            row = self._fetch_shard(shard_id)
            self._check_lease(row, worker_id)
            if completed is not None and total is not None:
                self._conn.execute(
                    "UPDATE shards SET lease_deadline = ?,"
                    " progress_completed = ?, progress_total = ?"
                    " WHERE shard_id = ?",
                    (deadline, completed, total, shard_id),
                )
            else:
                self._conn.execute(
                    "UPDATE shards SET lease_deadline = ? WHERE shard_id = ?",
                    (deadline, shard_id),
                )
        return deadline

    def complete_shard(
        self, shard_id: int, worker_id: str, report_json: str
    ) -> ShardRow:
        """ACTIVE → COMPLETED with the shard's report attached."""
        with self._lock, self._conn:
            row = self._fetch_shard(shard_id)
            self._check_lease(row, worker_id)
            check_transition(ShardState(row["state"]), ShardState.COMPLETED)
            self._conn.execute(
                "UPDATE shards SET state = ?, report_json = ?, last_error = NULL,"
                " worker_id = NULL, lease_deadline = NULL WHERE shard_id = ?",
                (ShardState.COMPLETED.value, report_json, shard_id),
            )
            updated = self._fetch_shard(shard_id)
        return _shard_row(updated)

    def requeue_shard(self, shard_id: int, error: Optional[str]) -> ShardRow:
        """ACTIVE → PENDING (retry), releasing the lease and recording why."""
        with self._lock, self._conn:
            row = self._fetch_shard(shard_id)
            check_transition(ShardState(row["state"]), ShardState.PENDING)
            self._conn.execute(
                "UPDATE shards SET state = ?, worker_id = NULL,"
                " lease_deadline = NULL, last_error = ?,"
                " progress_completed = NULL, progress_total = NULL"
                " WHERE shard_id = ?",
                (ShardState.PENDING.value, error, shard_id),
            )
            updated = self._fetch_shard(shard_id)
        return _shard_row(updated)

    def fail_shard(self, shard_id: int, error: str) -> ShardRow:
        """ACTIVE → FAILED (terminal): the retry budget is spent."""
        with self._lock, self._conn:
            row = self._fetch_shard(shard_id)
            check_transition(ShardState(row["state"]), ShardState.FAILED)
            self._conn.execute(
                "UPDATE shards SET state = ?, worker_id = NULL,"
                " lease_deadline = NULL, last_error = ? WHERE shard_id = ?",
                (ShardState.FAILED.value, error, shard_id),
            )
            updated = self._fetch_shard(shard_id)
        return _shard_row(updated)

    # -- internals -----------------------------------------------------------------

    def _fetch_shard(self, shard_id: int) -> sqlite3.Row:
        """Caller holds the lock (or tolerates a read-only race)."""
        row = self._conn.execute(
            "SELECT s.*, p.shard_count FROM shards s"
            " JOIN plans p ON p.plan_id = s.plan_id"
            " WHERE s.shard_id = ?",
            (shard_id,),
        ).fetchone()
        if row is None:
            raise ServiceLookupError(f"unknown shard {shard_id!r}")
        return row

    @staticmethod
    def _check_lease(row: sqlite3.Row, worker_id: str) -> None:
        """Reject lease operations from a worker that no longer holds it."""
        if (
            ShardState(row["state"]) is ShardState.ACTIVE
            and row["worker_id"] != worker_id
        ):
            raise TransitionError(
                f"shard {row['shard_id']} lease is held by "
                f"{row['worker_id']!r}, not {worker_id!r}; the lease expired "
                "and was re-assigned"
            )


def _plan_row(row: sqlite3.Row) -> PlanRow:
    return PlanRow(
        plan_id=row["plan_id"],
        plan_json=row["plan_json"],
        shard_count=row["shard_count"],
        submitted_at=row["submitted_at"],
        report_json=row["report_json"],
        priority=row["priority"],
    )


def _shard_row(row: sqlite3.Row) -> ShardRow:
    return ShardRow(
        shard_id=row["shard_id"],
        plan_id=row["plan_id"],
        shard_index=row["shard_index"],
        shard_count=row["shard_count"],
        state=ShardState(row["state"]),
        attempts=row["attempts"],
        worker_id=row["worker_id"],
        lease_deadline=row["lease_deadline"],
        report_json=row["report_json"],
        last_error=row["last_error"],
        progress_completed=row["progress_completed"],
        progress_total=row["progress_total"],
    )
