"""Stdlib HTTP front end for the sweep coordinator (no new dependencies).

A thin JSON layer over :class:`repro.service.coordinator.Coordinator`,
served by ``http.server.ThreadingHTTPServer`` — one handler thread per
connection, all funneling into the lock-serialized job store.

Routes (all bodies and responses are JSON):

.. code-block:: text

    GET  /healthz                 liveness probe
    GET  /plans                   list submitted plans
    GET  /plans/{id}              plan status: state, per-shard lifecycle rows
    GET  /plans/{id}/report       merged canonical report JSON (verbatim bytes)
    POST /plans                   {"plan": <plan doc|text>, "shards": N,
                                   "priority": P}
    POST /shards/claim            {"worker": id} → shard lease or {"shard": null}
    POST /shards/{id}/complete    {"worker": id, "report": <report doc|text>}
    POST /shards/{id}/fail        {"worker": id, "error": msg}
    POST /shards/{id}/heartbeat   {"worker": id, "completed": C, "total": T}
                                  (progress fields optional)

Error mapping: :class:`repro.errors.TransitionError` → 409 (lease lost /
illegal lifecycle step), :class:`repro.errors.ServiceLookupError` → 404,
any other :class:`repro.errors.ReproError` (malformed plans, bad
arguments) → 400, unexpected exceptions → 500.  Every error body is
``{"error": "..."}`` so clients surface one-line messages.
"""

from __future__ import annotations

import json
import socket
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple, Union

from repro.errors import (
    ReproError,
    ServiceError,
    ServiceLookupError,
    TransitionError,
)
from repro.service.coordinator import Coordinator

#: Default coordinator port (an unassigned port in the registered range).
DEFAULT_PORT = 8035


def _json_text(value: Union[str, Dict[str, Any]], what: str) -> str:
    """Accept a document either inline (object) or as a JSON string."""
    if isinstance(value, str):
        return value
    if isinstance(value, dict):
        return json.dumps(value)
    raise ServiceError(f"{what} must be a JSON object or string, got {value!r}")


class ServiceHTTPServer(ThreadingHTTPServer):
    """The coordinator's HTTP server; ``.port`` is the bound port."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], coordinator: Coordinator) -> None:
        super().__init__(address, _Handler)
        self.coordinator = coordinator

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        host = str(self.server_address[0])
        if ":" in host:  # bare IPv6 literal
            host = f"[{host}]"
        return f"http://{host}:{self.port}"


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    # -- dispatch ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        coordinator = self.server.coordinator
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        try:
            if parts == ["healthz"]:
                self._reply(200, {"status": "ok"})
            elif parts == ["plans"]:
                self._reply(200, {"plans": coordinator.list_plans()})
            elif len(parts) == 2 and parts[0] == "plans":
                self._reply(200, coordinator.plan_status(parts[1]))
            elif len(parts) == 3 and parts[0] == "plans" and parts[2] == "report":
                # The merged report is served verbatim: these bytes are the
                # artifact the CI job `cmp`s against a single-shot run.
                self._reply_raw(200, coordinator.plan_report(parts[1]))
            else:
                self._reply(404, {"error": f"no such route: GET {self.path}"})
        except Exception as exc:  # mapped to a status below
            self._reply_error(exc)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        coordinator = self.server.coordinator
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        try:
            body = self._read_body()
            if parts == ["plans"]:
                if "plan" not in body:
                    raise ServiceError('POST /plans needs a "plan" field')
                shards = body.get("shards", 1)
                if not isinstance(shards, int) or isinstance(shards, bool):
                    raise ServiceError(
                        f'"shards" must be an integer, got {shards!r}'
                    )
                priority = body.get("priority", 0)
                if not isinstance(priority, int) or isinstance(priority, bool):
                    raise ServiceError(
                        f'"priority" must be an integer, got {priority!r}'
                    )
                plan_text = _json_text(body["plan"], '"plan"')
                self._reply(
                    200, coordinator.submit(plan_text, shards, priority)
                )
            elif parts == ["shards", "claim"]:
                shard = coordinator.claim(self._worker(body))
                self._reply(200, {"shard": shard})
            elif len(parts) == 3 and parts[0] == "shards":
                shard_id = self._shard_id(parts[1])
                action = parts[2]
                if action == "complete":
                    if "report" not in body:
                        raise ServiceError('complete needs a "report" field')
                    report_text = _json_text(body["report"], '"report"')
                    self._reply(
                        200,
                        coordinator.complete(
                            shard_id, self._worker(body), report_text
                        ),
                    )
                elif action == "fail":
                    self._reply(
                        200,
                        coordinator.fail(
                            shard_id,
                            self._worker(body),
                            str(body.get("error", "unspecified worker error")),
                        ),
                    )
                elif action == "heartbeat":
                    self._reply(
                        200,
                        coordinator.heartbeat(
                            shard_id,
                            self._worker(body),
                            self._progress_field(body, "completed"),
                            self._progress_field(body, "total"),
                        ),
                    )
                else:
                    self._reply(
                        404, {"error": f"no such shard action: {action!r}"}
                    )
            else:
                self._reply(404, {"error": f"no such route: POST {self.path}"})
        except Exception as exc:
            self._reply_error(exc)

    # -- request/response plumbing --------------------------------------------------

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0) or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(body, dict):
            raise ServiceError("request body must be a JSON object")
        return body

    @staticmethod
    def _worker(body: Dict[str, Any]) -> str:
        worker = body.get("worker")
        if not worker or not isinstance(worker, str):
            raise ServiceError('request needs a non-empty "worker" id')
        return worker

    @staticmethod
    def _progress_field(body: Dict[str, Any], name: str) -> Optional[int]:
        value = body.get(name)
        if value is None:
            return None
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ServiceError(
                f'"{name}" must be a non-negative integer, got {value!r}'
            )
        return value

    @staticmethod
    def _shard_id(raw: str) -> int:
        try:
            return int(raw)
        except ValueError:
            raise ServiceLookupError(f"unknown shard {raw!r}") from None

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        self._reply_raw(status, json.dumps(payload))

    def _reply_raw(self, status: int, text: str) -> None:
        data = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        try:
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            pass  # the client hung up; nothing to salvage

    def _reply_error(self, exc: Exception) -> None:
        if isinstance(exc, TransitionError):
            status = 409
        elif isinstance(exc, ServiceLookupError):
            status = 404
        elif isinstance(exc, ReproError):
            status = 400
        else:
            status = 500
        self._reply(status, {"error": str(exc) or type(exc).__name__})

    def log_message(self, format: str, *args: Any) -> None:
        pass  # keep worker/CI logs readable; errors travel in responses


def create_server(
    coordinator: Coordinator,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
) -> ServiceHTTPServer:
    """Bind the coordinator's HTTP server (``port=0`` picks a free port)."""
    try:
        return ServiceHTTPServer((host, port), coordinator)
    except (OSError, socket.gaierror) as exc:
        raise ServiceError(
            f"cannot bind sweep service to {host}:{port}: {exc}"
        ) from None
