"""HTTP client for the sweep service (urllib only, no new dependencies).

:func:`service_url` is the one place service addresses are parsed — the
``--url`` flags, the ``REPRO_SERVICE_URL`` environment variable, and the
client constructor all go through it, so a malformed URL or port always
fails with the same clear one-line :class:`repro.errors.ServiceError`
(which the CLI renders as ``error: ...`` with exit code 1).

:class:`ServiceClient` mirrors the coordinator's routes one method per
endpoint and converts transport failures and HTTP error bodies back into
the service exception hierarchy: 409 → :class:`TransitionError` (lease
lost / illegal lifecycle step), 404 → :class:`ServiceLookupError`,
other errors → :class:`ServiceError`.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Dict, List, Optional, Union

from repro.errors import ServiceError, ServiceLookupError, TransitionError
from repro.runtime.plan import SweepPlan
from repro.service.server import DEFAULT_PORT

#: Environment variable naming the coordinator (used when ``--url`` is omitted).
SERVICE_URL_ENV = "REPRO_SERVICE_URL"


def validate_port(port: int) -> int:
    """A usable TCP port (0 = ephemeral, for tests) or a clear error."""
    if not isinstance(port, int) or isinstance(port, bool) or not 0 <= port <= 65535:
        raise ServiceError(
            f"port must be an integer in [0, 65535], got {port!r}"
        )
    return port


def service_url(raw: Optional[str] = None) -> str:
    """Resolve and validate the coordinator URL.

    ``raw`` falls back to ``$REPRO_SERVICE_URL``, then to
    ``http://127.0.0.1:8035``.  The value must be ``http(s)://host[:port]``
    with no path — anything else raises :class:`ServiceError` naming the
    offending value and, when it came from the environment, the variable.
    """
    source = "service URL"
    if raw is None:
        raw = os.environ.get(SERVICE_URL_ENV)
        source = SERVICE_URL_ENV
    if raw is None:
        return f"http://127.0.0.1:{DEFAULT_PORT}"
    try:
        parts = urllib.parse.urlsplit(raw)
        port = parts.port  # raises ValueError on non-numeric/out-of-range
    except ValueError as exc:
        raise ServiceError(f"malformed {source} {raw!r}: {exc}") from None
    if parts.scheme not in ("http", "https"):
        raise ServiceError(
            f"malformed {source} {raw!r}: expected http://host:port "
            f"(scheme {parts.scheme or 'missing'!r})"
        )
    if not parts.hostname:
        raise ServiceError(f"malformed {source} {raw!r}: no host")
    if parts.path not in ("", "/") or parts.query or parts.fragment:
        raise ServiceError(
            f"malformed {source} {raw!r}: the service mounts at the URL "
            "root; drop the path"
        )
    if port is not None and port == 0:
        raise ServiceError(f"malformed {source} {raw!r}: port 0 is not dialable")
    return f"{parts.scheme}://{parts.netloc}"


class ServiceClient:
    """One coordinator endpoint, one method per route."""

    def __init__(self, url: Optional[str] = None, timeout: float = 30.0) -> None:
        self.url = service_url(url)
        self.timeout = timeout

    # -- transport -------------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> str:
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            message = self._error_message(exc)
            if exc.code == 409:
                raise TransitionError(message) from None
            if exc.code == 404:
                raise ServiceLookupError(message) from None
            raise ServiceError(message) from None
        except (urllib.error.URLError, OSError) as exc:
            reason = getattr(exc, "reason", exc)
            raise ServiceError(
                f"cannot reach sweep service at {self.url}: {reason}"
            ) from None

    @staticmethod
    def _error_message(exc: urllib.error.HTTPError) -> str:
        try:
            body = json.loads(exc.read().decode("utf-8"))
            return str(body["error"])
        except Exception:
            return f"service returned HTTP {exc.code}"

    def _json(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        body = json.loads(self._request(method, path, payload))
        if not isinstance(body, dict):
            raise ServiceError(f"service returned a non-object body for {path}")
        return body

    # -- routes ----------------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def submit(
        self, plan: Union[SweepPlan, str], shards: int, priority: int = 0
    ) -> Dict[str, Any]:
        text = plan.to_json() if isinstance(plan, SweepPlan) else plan
        return self._json(
            "POST",
            "/plans",
            {"plan": text, "shards": shards, "priority": priority},
        )

    def claim(self, worker_id: str) -> Optional[Dict[str, Any]]:
        shard = self._json("POST", "/shards/claim", {"worker": worker_id})["shard"]
        if shard is not None and not isinstance(shard, dict):
            raise ServiceError("service returned a malformed shard lease")
        return shard

    def heartbeat(
        self,
        shard_id: int,
        worker_id: str,
        completed: Optional[int] = None,
        total: Optional[int] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"worker": worker_id}
        if completed is not None and total is not None:
            payload["completed"] = completed
            payload["total"] = total
        return self._json("POST", f"/shards/{shard_id}/heartbeat", payload)

    def complete(
        self, shard_id: int, worker_id: str, report_json: str
    ) -> Dict[str, Any]:
        return self._json(
            "POST",
            f"/shards/{shard_id}/complete",
            {"worker": worker_id, "report": report_json},
        )

    def fail(self, shard_id: int, worker_id: str, error: str) -> Dict[str, Any]:
        return self._json(
            "POST",
            f"/shards/{shard_id}/fail",
            {"worker": worker_id, "error": error},
        )

    def plan_status(self, plan_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/plans/{plan_id}")

    def plan_report(self, plan_id: str) -> str:
        """The merged report's canonical JSON, byte-for-byte as served."""
        return self._request("GET", f"/plans/{plan_id}/report")

    def list_plans(self) -> List[Dict[str, Any]]:
        plans = self._json("GET", "/plans")["plans"]
        if not isinstance(plans, list):
            raise ServiceError("service returned a malformed plan list")
        return plans

    # -- conveniences ----------------------------------------------------------------

    def wait_for_plan(
        self,
        plan_id: str,
        timeout: Optional[float] = None,
        poll_interval: float = 0.5,
    ) -> Dict[str, Any]:
        """Poll until the plan completes; raise on failure or timeout."""
        start = time.monotonic()
        while True:
            status = self.plan_status(plan_id)
            if status["state"] == "completed":
                return status
            if status["state"] == "failed":
                errors = [
                    shard["last_error"]
                    for shard in status["shards"]
                    if shard["state"] == "FAILED" and shard["last_error"]
                ]
                raise ServiceError(
                    f"plan {plan_id!r} failed: "
                    + ("; ".join(errors) or "shard(s) sealed FAILED")
                )
            if timeout is not None and time.monotonic() - start > timeout:
                raise ServiceError(
                    f"plan {plan_id!r} still {status['state']} after "
                    f"{timeout:.0f}s (counts: {status['counts']})"
                )
            time.sleep(poll_interval)
