"""Pull-model shard workers: claim, simulate, stream the report back.

A :class:`ShardWorker` is the service's unit of horizontal scale: point any
number of them (any host) at one coordinator and each loops

1. ``claim`` a PENDING shard lease;
2. decode the plan, take :meth:`repro.runtime.plan.SweepPlan.shard`
   ``(index, count)`` — the same deterministic partition ``repro plan run
   --shard`` uses — and run it through the existing
   :meth:`repro.runtime.session.Session.run` against the worker's
   (typically shared) :class:`repro.runtime.cache.ResultCache`;
3. heartbeat the lease from a side thread while the shard simulates, so
   long shards never expire under a live worker; each beat carries the
   shard's distinct-point progress (from :meth:`Session.run`'s progress
   callback), which ``repro status`` renders per shard;
4. ``complete`` with the shard :class:`SweepReport`'s canonical JSON.

Crash behavior is the whole point: a worker that dies (SIGKILL, OOM, host
loss) simply stops heartbeating, the coordinator's reaper re-queues the
shard at lease expiry, and any other worker picks it up — determinism
makes the retried result identical.  A worker whose lease was re-assigned
under it (it stalled past the deadline) gets a 409 on
``complete``/``heartbeat`` and just moves on: the shard is someone else's.

Exceptions *inside* the simulation are reported via ``fail`` (consuming
the shard's retry budget) and the worker keeps serving — one poisoned
shard never takes the worker down with it.

``stall_seconds`` is deliberate fault injection: sleep after claiming,
before simulating.  The crash tests and demos use it to park a worker
mid-shard and SIGKILL it.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ReproError, ServiceError
from repro.runtime.plan import SweepPlan
from repro.runtime.session import Session
from repro.service.client import ServiceClient


def default_worker_id() -> str:
    """``host-pid`` — unique per worker process, stable within one."""
    return f"{socket.gethostname()}-{os.getpid()}"


class _ShardProgress:
    """Latest (completed, total) hand-off from Session.run to the beater.

    :meth:`update` is the :meth:`repro.runtime.session.Session.run`
    progress callback (simulation thread); :meth:`read` is polled by the
    heartbeat thread.  A lock keeps the pair coherent.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._completed: Optional[int] = None
        self._total: Optional[int] = None

    def update(self, completed: int, total: int) -> None:
        with self._lock:
            self._completed = completed
            self._total = total

    def read(self) -> Tuple[Optional[int], Optional[int]]:
        with self._lock:
            return self._completed, self._total


class ShardWorker:
    """One worker process's claim/run/report loop.

    Args:
        client: the coordinator endpoint.
        session_factory: builds the :class:`Session` the worker simulates
            with (defaults to :meth:`Session.from_env`, i.e. the shared
            on-disk cache and the CPU-count pool).  Called once; the
            session persists across shards and closes when the loop ends.
        worker_id: lease identity (default ``host-pid``).
        poll_interval: seconds between claims when the queue is dry.
        idle_exit: exit the loop after this many consecutive dry seconds
            (``None`` = serve forever).
        max_shards: stop after completing/failing this many shards
            (``None`` = unbounded).
        stall_seconds: fault injection — sleep this long between claiming
            and simulating (see the module docstring).
        log: progress sink (``print``); pass a no-op for quiet embedding.
    """

    def __init__(
        self,
        client: ServiceClient,
        session_factory: Optional[Callable[[], Session]] = None,
        worker_id: Optional[str] = None,
        poll_interval: float = 0.5,
        idle_exit: Optional[float] = None,
        max_shards: Optional[int] = None,
        stall_seconds: float = 0.0,
        log: Callable[[str], None] = print,
    ) -> None:
        self.client = client
        self.session_factory = (
            session_factory if session_factory is not None else Session.from_env
        )
        self.worker_id = worker_id if worker_id is not None else default_worker_id()
        self.poll_interval = poll_interval
        self.idle_exit = idle_exit
        self.max_shards = max_shards
        self.stall_seconds = stall_seconds
        self.log = log
        self.completed = 0
        self.failed = 0

    def run(self) -> int:
        """Serve shards until idle-exit/max-shards; returns completions."""
        session = self.session_factory()
        idle_since: Optional[float] = None
        try:
            while True:
                if (
                    self.max_shards is not None
                    and self.completed + self.failed >= self.max_shards
                ):
                    return self.completed
                shard = self.client.claim(self.worker_id)
                if shard is None:
                    now = time.monotonic()
                    if idle_since is None:
                        idle_since = now
                    if (
                        self.idle_exit is not None
                        and now - idle_since >= self.idle_exit
                    ):
                        return self.completed
                    time.sleep(self.poll_interval)
                    continue
                idle_since = None
                self._run_shard(session, shard)
        finally:
            session.close()

    # -- one shard -------------------------------------------------------------------

    def _run_shard(self, session: Session, shard: Dict[str, Any]) -> None:
        shard_id = int(shard["shard_id"])
        label = (
            f"shard {shard['shard_index']}/{shard['shard_count']} "
            f"of plan {shard['plan_id']}"
        )
        progress = _ShardProgress()
        stop_beating = self._start_heartbeat(
            shard_id, shard["lease_seconds"], progress
        )
        try:
            if self.stall_seconds > 0:  # fault injection: die here, mid-shard
                time.sleep(self.stall_seconds)
            plan = SweepPlan.from_json(shard["plan"])
            if shard["shard_count"] > 1:
                plan = plan.shard(shard["shard_index"], shard["shard_count"])
            start = time.perf_counter()
            report = session.run(plan, progress=progress.update)
            elapsed = time.perf_counter() - start
        except ReproError as exc:
            self.failed += 1
            self.log(f"worker {self.worker_id}: {label} failed: {exc}")
            self._report_failure(shard_id, str(exc))
            return
        finally:
            stop_beating.set()
        try:
            self.client.complete(shard_id, self.worker_id, report.to_json())
        except ServiceError as exc:
            # Lease lost (or coordinator gone): the shard is someone else's
            # now; the work is still in the shared cache.
            self.failed += 1
            self.log(f"worker {self.worker_id}: {label} not accepted: {exc}")
            return
        self.completed += 1
        self.log(
            f"worker {self.worker_id}: {label} done — "
            f"{report.distinct_points} point(s), {report.simulated} simulated, "
            f"{report.cache_hits} cached, {elapsed:.2f}s"
        )

    def _report_failure(self, shard_id: int, error: str) -> None:
        try:
            self.client.fail(shard_id, self.worker_id, error)
        except ServiceError as exc:
            self.log(
                f"worker {self.worker_id}: could not report shard "
                f"{shard_id} failure: {exc}"
            )

    def _start_heartbeat(
        self,
        shard_id: int,
        lease_seconds: float,
        progress: "_ShardProgress",
    ) -> threading.Event:
        """Extend the lease on a daemon thread until the event is set.

        Each beat reads the latest simulation progress and reports it
        alongside the lease extension.
        """
        stop = threading.Event()
        interval = max(float(lease_seconds) / 3.0, 0.05)

        def _beat() -> None:
            while not stop.wait(interval):
                completed, total = progress.read()
                try:
                    self.client.heartbeat(
                        shard_id, self.worker_id, completed, total
                    )
                except ServiceError:
                    return  # lease lost or server gone; complete() will say so

        threading.Thread(
            target=_beat, name=f"heartbeat-{shard_id}", daemon=True
        ).start()
        return stop
