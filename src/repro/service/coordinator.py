"""The sweep coordinator: policy on top of the durable job store.

A :class:`Coordinator` turns the :class:`repro.service.store.JobStore`
primitives into the service's semantics:

- **submit** — validate the posted :class:`repro.runtime.plan.SweepPlan`
  (it must be unsharded), canonicalize it, clamp the requested fan-out to
  the plan's distinct-point count, and enqueue one PENDING row per shard.
  Submission is idempotent on (canonical plan JSON, effective shard count).
- **claim / heartbeat / complete / fail** — the worker-facing lease
  protocol.  ``complete`` validates the posted shard report against the
  stored plan (right plan, right shard) and re-canonicalizes it, so the
  bytes the store holds never depend on a client's JSON formatting.
- **merge on completion** — the moment the last shard completes, the shard
  reports merge (:meth:`repro.runtime.plan.SweepReport.merge`) and the
  merged canonical JSON is persisted on the plan row.  Because shard
  merging is bit-identical to an unsharded run, the served report is
  byte-for-byte what ``Session.run(plan)`` would have produced.
- **retry budget** — worker-reported failures and expired leases both
  re-queue the shard (ACTIVE → PENDING) until the shard has been claimed
  ``max_attempts`` times; after that it seals FAILED.
- **reaper** — :meth:`reap` is one pass over expired leases;
  :meth:`start_reaper` runs it on a daemon thread every
  ``reap_interval`` seconds, which is what lets SIGKILLed workers'
  shards flow back into the queue.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServiceError, TransitionError
from repro.runtime.plan import SweepPlan, SweepReport
from repro.service.store import JobStore, ShardRow, ShardState


class ServiceConfig:
    """Coordinator policy knobs (validated at construction)."""

    def __init__(
        self,
        lease_seconds: float = 30.0,
        max_attempts: int = 3,
        reap_interval: float = 1.0,
    ) -> None:
        if lease_seconds <= 0:
            raise ServiceError(
                f"lease must be a positive number of seconds, got {lease_seconds!r}"
            )
        if max_attempts < 1:
            raise ServiceError(
                f"max attempts must be a positive integer, got {max_attempts!r}"
            )
        if reap_interval <= 0:
            raise ServiceError(
                f"reap interval must be positive seconds, got {reap_interval!r}"
            )
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts
        self.reap_interval = reap_interval


class Coordinator:
    """Serve one job store: submission, leases, retries, merged reports."""

    def __init__(
        self, store: JobStore, config: Optional[ServiceConfig] = None
    ) -> None:
        self.store = store
        self.config = config if config is not None else ServiceConfig()
        self._reaper: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- submission ------------------------------------------------------------------

    def submit(
        self, plan_text: str, shards: int, priority: int = 0
    ) -> Dict[str, Any]:
        """Validate, canonicalize and enqueue a plan; idempotent.

        ``priority`` steers the claim queue (higher drains first) without
        entering the plan identity — resubmitting an existing plan returns
        it with its original priority.
        """
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise ServiceError(
                f"shards must be a positive integer, got {shards!r}"
            )
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise ServiceError(f"priority must be an integer, got {priority!r}")
        plan = SweepPlan.from_json(plan_text)  # ExperimentError on bad JSON
        if plan.shard_spec is not None:
            raise ServiceError(
                "submit the unsharded plan; the service shards it "
                f"(got shard {plan.shard_spec[0]}/{plan.shard_spec[1]})"
            )
        canonical = plan.to_json()
        distinct = len(plan.distinct_keys())
        effective = min(shards, distinct)
        row, created = self.store.submit_plan(
            canonical, effective, time.time(), priority
        )
        return {
            "plan_id": row.plan_id,
            "shard_count": row.shard_count,
            "distinct_points": distinct,
            "job_count": plan.job_count(),
            "created": created,
            "priority": row.priority,
        }

    # -- the worker-facing lease protocol --------------------------------------------

    def claim(self, worker_id: str) -> Optional[Dict[str, Any]]:
        """Lease the oldest PENDING shard, or ``None`` when the queue is dry."""
        shard = self.store.claim_shard(
            worker_id, self.config.lease_seconds, time.time()
        )
        if shard is None:
            return None
        plan = self.store.get_plan(shard.plan_id)
        return {
            "shard_id": shard.shard_id,
            "plan_id": shard.plan_id,
            "shard_index": shard.shard_index,
            "shard_count": shard.shard_count,
            "attempts": shard.attempts,
            "lease_seconds": self.config.lease_seconds,
            "lease_deadline": shard.lease_deadline,
            "plan": plan.plan_json,
        }

    def heartbeat(
        self,
        shard_id: int,
        worker_id: str,
        completed: Optional[int] = None,
        total: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Extend a lease, optionally recording shard progress.

        ``completed``/``total`` (distinct points done out of the shard's
        total) come from the worker's :meth:`Session.run` progress callback
        and surface in :meth:`plan_status` / ``repro status``.
        """
        for name, value in (("completed", completed), ("total", total)):
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, int) or value < 0
            ):
                raise ServiceError(
                    f"progress {name} must be a non-negative integer, got {value!r}"
                )
        deadline = self.store.heartbeat_shard(
            shard_id,
            worker_id,
            self.config.lease_seconds,
            time.time(),
            completed,
            total,
        )
        return {"shard_id": shard_id, "lease_deadline": deadline}

    def complete(
        self, shard_id: int, worker_id: str, report_text: str
    ) -> Dict[str, Any]:
        """Accept a shard report, seal the shard, merge the plan when done."""
        shard = self.store.get_shard(shard_id)
        self._check_lease(shard, worker_id)  # before bothering to parse
        plan_row = self.store.get_plan(shard.plan_id)
        report = SweepReport.from_json(report_text)  # ExperimentError if bad
        spec = report.plan.shard_spec
        expected = (shard.shard_index, shard.shard_count)
        if report.plan.unsharded().to_json() != plan_row.plan_json:
            raise ServiceError(
                f"shard {shard_id} report is for a different plan than "
                f"{shard.plan_id!r}"
            )
        if spec != expected and not (spec is None and shard.shard_count == 1):
            raise ServiceError(
                f"shard {shard_id} report covers shard "
                f"{'none' if spec is None else '%d/%d' % spec}, expected "
                f"{expected[0]}/{expected[1]}"
            )
        self.store.complete_shard(shard_id, worker_id, report.to_json())
        done = self._merge_if_complete(shard.plan_id)
        return {"shard_id": shard_id, "plan_id": shard.plan_id, "done": done}

    def fail(self, shard_id: int, worker_id: str, error: str) -> Dict[str, Any]:
        """Record a worker-reported failure: re-queue or seal FAILED."""
        shard = self.store.get_shard(shard_id)
        self._check_lease(shard, worker_id)
        outcome = self._retry_or_fail(shard, f"worker {worker_id!r}: {error}")
        return {
            "shard_id": shard_id,
            "plan_id": shard.plan_id,
            "state": outcome.value,
            "attempts": shard.attempts,
        }

    # -- plan status -----------------------------------------------------------------

    def plan_status(self, plan_id: str) -> Dict[str, Any]:
        plan = self.store.get_plan(plan_id)
        shards = self.store.shards(plan_id)
        counts = {state: 0 for state in ShardState}
        for shard in shards:
            counts[shard.state] += 1
        if counts[ShardState.FAILED]:
            state = "failed"
        elif counts[ShardState.COMPLETED] == len(shards):
            state = "completed"
        else:
            state = "running"
        return {
            "plan_id": plan_id,
            "state": state,
            "shard_count": plan.shard_count,
            "submitted_at": plan.submitted_at,
            "priority": plan.priority,
            "counts": {s.value: n for s, n in counts.items()},
            "report_available": plan.report_json is not None,
            "shards": [
                {
                    "shard_id": shard.shard_id,
                    "shard_index": shard.shard_index,
                    "state": shard.state.value,
                    "attempts": shard.attempts,
                    "worker_id": shard.worker_id,
                    "lease_deadline": shard.lease_deadline,
                    "last_error": shard.last_error,
                    "progress_completed": shard.progress_completed,
                    "progress_total": shard.progress_total,
                }
                for shard in shards
            ],
        }

    def plan_report(self, plan_id: str) -> str:
        """The merged canonical report JSON of a fully completed plan."""
        plan = self.store.get_plan(plan_id)
        if plan.report_json is None:
            status = self.plan_status(plan_id)
            raise ServiceError(
                f"plan {plan_id!r} has no merged report yet "
                f"(state: {status['state']}, counts: {status['counts']})"
            )
        return plan.report_json

    def list_plans(self) -> List[Dict[str, Any]]:
        return [
            {
                "plan_id": row.plan_id,
                "shard_count": row.shard_count,
                "submitted_at": row.submitted_at,
                "priority": row.priority,
                "state": self.plan_status(row.plan_id)["state"],
            }
            for row in self.store.list_plans()
        ]

    # -- lease reaping ---------------------------------------------------------------

    def reap(self, now: Optional[float] = None) -> List[Tuple[int, str]]:
        """One pass: re-queue (or seal) every ACTIVE shard past its deadline."""
        if now is None:
            now = time.time()
        outcomes: List[Tuple[int, str]] = []
        for shard in self.store.expired_shards(now):
            state = self._retry_or_fail(
                shard,
                f"lease expired (worker {shard.worker_id!r}, "
                f"attempt {shard.attempts})",
            )
            outcomes.append((shard.shard_id, state.value))
        return outcomes

    def start_reaper(self) -> None:
        """Run :meth:`reap` every ``reap_interval`` seconds on a daemon thread."""
        if self._reaper is not None:
            return
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.wait(self.config.reap_interval):
                try:
                    self.reap()
                except Exception:  # the reaper must outlive transient errors
                    pass

        self._reaper = threading.Thread(
            target=_loop, name="lease-reaper", daemon=True
        )
        self._reaper.start()

    def stop(self) -> None:
        self._stop.set()
        if self._reaper is not None:
            self._reaper.join(timeout=5.0)
            self._reaper = None

    # -- internals -------------------------------------------------------------------

    @staticmethod
    def _check_lease(shard: ShardRow, worker_id: str) -> None:
        """Advisory zombie check on an already-read row; the store repeats
        it under its lock, so a racing expiry still cannot slip through."""
        if shard.state is ShardState.ACTIVE and shard.worker_id != worker_id:
            raise TransitionError(
                f"shard {shard.shard_id} lease is held by "
                f"{shard.worker_id!r}, not {worker_id!r}; the lease expired "
                "and was re-assigned"
            )

    def _retry_or_fail(self, shard: ShardRow, error: str) -> ShardState:
        """The bounded retry budget: attempts are claims, not failures."""
        if shard.attempts >= self.config.max_attempts:
            self.store.fail_shard(
                shard.shard_id,
                f"{error}; retry budget exhausted "
                f"({shard.attempts}/{self.config.max_attempts} attempts)",
            )
            return ShardState.FAILED
        self.store.requeue_shard(shard.shard_id, f"{error}; re-queued")
        return ShardState.PENDING

    def _merge_if_complete(self, plan_id: str) -> bool:
        """Merge and persist the plan report once every shard is COMPLETED."""
        plan_row = self.store.get_plan(plan_id)
        if plan_row.report_json is not None:
            return True
        shards = self.store.shards(plan_id)
        if any(shard.state is not ShardState.COMPLETED for shard in shards):
            return False
        reports = [
            SweepReport.from_json(shard.report_json)
            for shard in shards
            if shard.report_json is not None
        ]
        merged = reports[0].merge(*reports[1:])
        self.store.store_plan_report(plan_id, merged.to_json())
        return True
