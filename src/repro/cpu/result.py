"""Simulation results reported by both CPU models."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class SimResult:
    """End-to-end timing of one program on one design.

    Attributes:
        design: design key (e.g. ``"rasa-dmdb-wls"``).
        program: program name.
        cycles: total CPU cycles from first fetch to last retire.
        instructions: dynamic instruction count.
        mm_count: rasa_mm instructions executed.
        bypass_count: rasa_mm that skipped WL via weight reuse.
        weight_loads: rasa_mm that performed a full WL.
        engine_busy_cycles: engine-clock cycles from first WL to last drain.
        clock_mhz: CPU clock, for converting cycles to seconds.
    """

    design: str
    program: str
    cycles: int
    instructions: int
    mm_count: int
    bypass_count: int
    weight_loads: int
    engine_busy_cycles: int
    clock_mhz: int

    @property
    def seconds(self) -> float:
        return self.cycles / (self.clock_mhz * 1e6)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def bypass_rate(self) -> float:
        return self.bypass_count / self.mm_count if self.mm_count else 0.0

    @property
    def cycles_per_mm(self) -> float:
        """Average CPU cycles per rasa_mm — the throughput the paper plots."""
        return self.cycles / self.mm_count if self.mm_count else 0.0

    def normalized_to(self, baseline: "SimResult") -> float:
        """Runtime normalized to a baseline run (Fig. 5 / Fig. 7's y-axis)."""
        if baseline.cycles == 0:
            return 0.0
        return self.cycles / baseline.cycles
