"""Analytic O(1) core model: closed-form sweep points, no instruction walk.

The fast model (:mod:`repro.cpu.fast`) is O(n) in dynamic instructions: it
lowers a GEMM to a program and propagates timestamps through every
instruction.  For sweeps that is the dominant cost — even dedup-aware plans
pay codegen plus an O(n) walk per distinct point.  This module computes the
same :class:`repro.cpu.result.SimResult` directly from the *structure* of
the stream the code generator would emit, in time bounded by small
constants per point (independent of M, N, K):

- **counts** (``instructions``, ``mm_count``, ``weight_loads``,
  ``bypass_count``) are exact closed forms over the register-block
  geometry grid.  A GEMM decomposes into at most four distinct block
  geometries (full blocks plus M/N edge clippings); each contributes
  ``k_tiles`` identical K steps whose load/bypass pattern follows from the
  blocking's ``mm_pairs`` order and the per-K-step B reload.
- **engine time** is steady-state weight-stationary pipelining.  Two
  recurrences govern it: the control policy's structural sub-stage overlap
  (the paper's Eq. 1 fold latency ``2·TK + TM + TN − 1`` fully serialized,
  down to the ``TM``-cycle initiation floor for WLS), and the loop-carried
  C accumulation — the mm at K step *s* reads the C tile the same block
  position wrote at step *s − 1*, so its issue floor is that mm's
  completion.  Block boundaries reset the C chain (the C block is freshly
  loaded, and loads run far ahead of the engine).  Both recurrences reach
  a periodic regime within a few K steps, so per-step deltas are obtained
  *exactly* by driving the real :class:`repro.engine.scheduler
  .EngineScheduler` over a bounded probe (a few primed K steps per
  distinct geometry pair), never per instruction.
- **warmup** (the only span where load readiness binds) replays the first
  few K steps of the first block with the fast model's exact dispatch and
  load-port arithmetic — a bounded prefix, not the program.
- **the tail** (C stores through the single store port, trailing scalar
  overhead, retire pacing) is reconstructed from the final K step's
  per-mm completion offsets.

Engine-bound programs dominate this workload family (every design's mm
initiation interval is at least ``TM`` engine cycles, 8x the frontend and
load-port demand per K step), so steady state plus exact warmup/tail keeps
the cycle estimate within a small relative error of the fast model —
:data:`ANALYTIC_CYCLE_ERROR_BOUND` is the documented contract, enforced by
tests and :mod:`repro.experiments.analytic_validation`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.cpu.config import CoreConfig
from repro.cpu.result import SimResult
from repro.engine.config import EngineConfig
from repro.engine.scheduler import EngineScheduler, StageTimes
from repro.physical.energy import EnergyBreakdown, EnergyModel
from repro.workloads.codegen import CodegenOptions
from repro.workloads.gemm import GemmShape
from repro.workloads.tiling import BlockingConfig, MMOrder

#: Documented upper bound on the analytic model's relative cycle error
#: versus the fast model (counts are exact).  Validated by
#: tests/cpu/test_analytic.py and repro.experiments.analytic_validation.
ANALYTIC_CYCLE_ERROR_BOUND = 0.02

#: K steps of the first block replayed with exact readiness (dispatch +
#: load-port arithmetic).  Loads stop binding within the first couple of
#: steps; six covers every design with margin while keeping the replayed
#: prefix under the 97-entry ROB window (so ROB stalls cannot occur in it).
_WARMUP_STEPS = 6

#: K steps measured explicitly at the start of a probed block before
#: extrapolating at the settled per-step delta (the C-feedback recurrence
#: settles in two to three steps).
_PROFILE_STEPS = 4

#: K steps used to prime a probe into the end-of-block periodic regime.
_PRIME_STEPS = 5

#: K steps run when measuring the settled per-step delta.
_SETTLE_STEPS = 10


@dataclasses.dataclass(frozen=True)
class _Geometry:
    """One register-block geometry: bm' x bn' C tiles (edge-clipped)."""

    bm: int
    bn: int

    def mm_pairs(self, order: MMOrder) -> List[Tuple[int, int]]:
        if order is MMOrder.WEIGHT_REUSE:
            return [(i, j) for j in range(self.bn) for i in range(self.bm)]
        return [(i, j) for i in range(self.bm) for j in range(self.bn)]

    @property
    def mms_per_step(self) -> int:
        return self.bm * self.bn

    @property
    def loads_per_step(self) -> int:
        return self.bm + self.bn


@dataclasses.dataclass(frozen=True)
class _BlockStructure:
    """The row-major block walk in aggregate (no block enumeration)."""

    blocks: Dict[_Geometry, int]
    boundary: Dict[Tuple[_Geometry, _Geometry], int]
    first: _Geometry
    last: _Geometry
    penultimate: Optional[_Geometry]  # geometry before the last block

    @property
    def block_count(self) -> int:
        return sum(self.blocks.values())


def _block_structure(shape: GemmShape, blocking: BlockingConfig) -> _BlockStructure:
    """Aggregate the block sequence: counts per geometry + boundary pairs.

    ``boundary[(g1, g2)]`` counts consecutive-block boundaries whose
    geometries are ``g1 -> g2`` over the row-major walk of
    :meth:`repro.workloads.tiling.TileLoopNest.blocks` — everything needed
    to sum per-block scheduler deltas without enumerating blocks.
    """
    m_t, n_t = shape.m_tiles, shape.n_tiles
    bm, bn = blocking.bm, blocking.bn
    m_full, m_rem = divmod(m_t, bm)
    n_full, n_rem = divmod(n_t, bn)

    def row_runs(row_bm: int) -> List[Tuple[_Geometry, int]]:
        runs: List[Tuple[_Geometry, int]] = []
        if n_full:
            runs.append((_Geometry(row_bm, bn), n_full))
        if n_rem:
            runs.append((_Geometry(row_bm, n_rem), 1))
        return runs

    # Row kinds and their multiplicities (at most two kinds exist).
    row_kinds: List[Tuple[List[Tuple[_Geometry, int]], int]] = []
    if m_full:
        row_kinds.append((row_runs(bm), m_full))
    if m_rem:
        row_kinds.append((row_runs(m_rem), 1))

    blocks: Dict[_Geometry, int] = {}
    boundary: Dict[Tuple[_Geometry, _Geometry], int] = {}

    def add(key: Tuple[_Geometry, _Geometry], count: int) -> None:
        if count:
            boundary[key] = boundary.get(key, 0) + count

    for runs, mult in row_kinds:
        for geom, count in runs:
            if count:
                blocks[geom] = blocks.get(geom, 0) + count * mult
        for geom, count in runs:
            add((geom, geom), (count - 1) * mult)
        for (g1, _), (g2, _) in zip(runs, runs[1:]):
            add((g1, g2), mult)
    # Row-to-row boundaries: consecutive same-kind rows, then the kind change.
    for runs, mult in row_kinds:
        add((runs[-1][0], runs[0][0]), mult - 1)
    for (runs1, _), (runs2, _) in zip(row_kinds, row_kinds[1:]):
        add((runs1[-1][0], runs2[0][0]), 1)

    # The geometry preceding the final block (drives the tail's probe pair).
    last_runs = row_kinds[-1][0]
    if last_runs[-1][1] >= 2 or len(last_runs) >= 2:
        penultimate: Optional[_Geometry] = (
            last_runs[-1][0] if last_runs[-1][1] >= 2 else last_runs[-2][0]
        )
    elif row_kinds[-1][1] >= 2:
        penultimate = last_runs[-1][0]
    elif len(row_kinds) >= 2:
        penultimate = row_kinds[-2][0][-1][0]
    else:
        penultimate = None

    return _BlockStructure(
        blocks=blocks,
        boundary=boundary,
        first=row_kinds[0][0][0][0],
        last=last_runs[-1][0],
        penultimate=penultimate,
    )


class AnalyticCoreModel:
    """Closed-form (GemmShape, design) -> :class:`SimResult` estimation.

    Probe results are memoized per (geometry, geometry) pair, so sweeping
    many shapes against one design reuses a handful of scheduler probes.
    Assumes the runtime's default ideal memory (fixed-latency tile loads);
    custom memory hierarchies need the fast model.
    """

    def __init__(
        self,
        core: CoreConfig = CoreConfig(),
        engine: Optional[EngineConfig] = None,
    ) -> None:
        self.core = core
        self.engine = engine if engine is not None else EngineConfig()
        self.ratio = core.engine_clock_ratio(self.engine.clock_mhz)
        self._settled_cache: Dict[
            Tuple[_Geometry, BlockingConfig], Tuple[float, List[StageTimes]]
        ] = {}
        self._profile_cache: Dict[
            Tuple[_Geometry, _Geometry, BlockingConfig],
            Tuple[List[int], List[List[StageTimes]]],
        ] = {}

    # -- scheduler probes ----------------------------------------------------------

    def _feedback_step(
        self,
        scheduler: EngineScheduler,
        geom: _Geometry,
        blocking: BlockingConfig,
        version: int,
        prev_completes: Optional[Dict[Tuple[int, int], int]],
    ) -> Tuple[List[StageTimes], Dict[Tuple[int, int], int]]:
        """Schedule one K step, honoring the loop-carried C dependency.

        In the fast model's steady state an mm's issue floor is exactly the
        completion of the same block position one K step earlier (loads and
        dispatch run far ahead): ``ceil(complete·ratio / ratio) ==
        complete``.  The first step of a block passes zero (C freshly
        loaded).  B registers are rewritten every step, so the weight key's
        version component is the step counter.
        """
        step: List[StageTimes] = []
        completes: Dict[Tuple[int, int], int] = {}
        for i, j in geom.mm_pairs(blocking.mm_order):
            ready = prev_completes.get((i, j), 0) if prev_completes else 0
            times = scheduler.schedule_mm(
                ready_b=ready, ready_ac=ready, weight_key=(j, version)
            )
            completes[(i, j)] = times.complete
            step.append(times)
        return step, completes

    def _settled(
        self, geom: _Geometry, blocking: BlockingConfig
    ) -> Tuple[float, List[StageTimes]]:
        """Settled per-K-step completion delta (and final step pattern)."""
        key = (geom, blocking)
        if key not in self._settled_cache:
            scheduler = EngineScheduler(self.engine)
            completes: Optional[Dict[Tuple[int, int], int]] = None
            ends: List[int] = []
            step: List[StageTimes] = []
            for version in range(_SETTLE_STEPS):
                step, completes = self._feedback_step(
                    scheduler, geom, blocking, version, completes
                )
                ends.append(step[-1].complete)
            deltas = [b - a for a, b in zip(ends, ends[1:])]
            # Max-plus recurrences can settle into a short limit cycle;
            # averaging the last two periods absorbs a period-2 oscillation.
            delta = (deltas[-1] + deltas[-2]) / 2.0
            self._settled_cache[key] = (delta, step)
        return self._settled_cache[key]

    def _block_profile(
        self, prev_geom: _Geometry, geom: _Geometry, blocking: BlockingConfig
    ) -> Tuple[List[int], List[List[StageTimes]]]:
        """Per-step deltas for the first K steps of a ``geom`` block.

        The probe primes the scheduler into the end-of-block regime of
        ``prev_geom`` (the state carried across a block boundary is just
        the last mm's stage times), then measures the opening steps of the
        next block: step one has a fresh C block (compressed), subsequent
        steps re-enter the C-feedback recurrence.
        """
        key = (prev_geom, geom, blocking)
        if key not in self._profile_cache:
            scheduler = EngineScheduler(self.engine)
            completes: Optional[Dict[Tuple[int, int], int]] = None
            version = 0
            for _ in range(_PRIME_STEPS):
                _, completes = self._feedback_step(
                    scheduler, prev_geom, blocking, version, completes
                )
                version += 1
            anchor = scheduler.last.complete
            deltas: List[int] = []
            patterns: List[List[StageTimes]] = []
            completes = None  # block boundary: the C block is reloaded
            for _ in range(_PROFILE_STEPS):
                step, completes = self._feedback_step(
                    scheduler, geom, blocking, version, completes
                )
                version += 1
                deltas.append(step[-1].complete - anchor)
                anchor = step[-1].complete
                patterns.append(step)
            self._profile_cache[key] = (deltas, patterns)
        return self._profile_cache[key]

    def _block_time(
        self,
        prev_geom: _Geometry,
        geom: _Geometry,
        k_tiles: int,
        blocking: BlockingConfig,
    ) -> float:
        """Engine cycles one ``geom`` block adds after a ``prev_geom`` block."""
        deltas, _ = self._block_profile(prev_geom, geom, blocking)
        measured = min(k_tiles, _PROFILE_STEPS)
        total = float(sum(deltas[:measured]))
        if k_tiles > _PROFILE_STEPS:
            settled, _ = self._settled(geom, blocking)
            total += (k_tiles - _PROFILE_STEPS) * settled
        return total

    # -- warmup: exact replay of the first block's prefix --------------------------

    def _warmup(
        self,
        first_geom: _Geometry,
        k_steps: int,
        codegen: CodegenOptions,
    ) -> Tuple[int, int, List[StageTimes]]:
        """Replay the first ``k_steps`` K steps with exact readiness.

        Mirrors :meth:`repro.cpu.fast.FastCoreModel.run` for the stream
        prefix the code generator emits for the first register block: C
        loads, then per K step A/B loads, mms, and scalar overhead.  The
        prefix stays under the ROB window by construction, so dispatch is
        purely fetch-paced.  Returns ``(first_wl, last_complete, last
        step's StageTimes)`` in engine cycles.
        """
        core = self.core
        ratio = self.ratio
        blocking = codegen.blocking
        scheduler = EngineScheduler(self.engine)
        inv_fetch = 1.0 / core.fetch_width
        transfer = core.tile_transfer_cycles
        load_latency = core.l1_latency + transfer

        dispatch = float(core.frontend_latency)
        load_ports = [0.0] * core.load_ports
        ready: Dict[Tuple[str, int], float] = {}

        def do_load(reg: Tuple[str, int]) -> None:
            nonlocal dispatch
            dispatch += inv_fetch
            port = min(range(len(load_ports)), key=load_ports.__getitem__)
            start = max(dispatch, load_ports[port])
            load_ports[port] = start + transfer
            ready[reg] = start + load_latency

        bm, bn = first_geom.bm, first_geom.bn
        for i in range(bm):
            for j in range(bn):
                do_load(("c", i * bn + j))

        first_wl: Optional[int] = None
        last_step: List[StageTimes] = []
        for step in range(k_steps):
            for i in range(bm):
                do_load(("a", i))
            for j in range(bn):
                do_load(("b", j))
            last_step = []
            for i, j in first_geom.mm_pairs(blocking.mm_order):
                dispatch += inv_fetch
                operands = max(
                    dispatch, ready[("a", i)], ready[("b", j)],
                    ready[("c", i * bn + j)],
                )
                engine_ready = int(-(-operands // ratio))
                times = scheduler.schedule_mm(
                    ready_b=engine_ready, ready_ac=engine_ready, weight_key=(j, step)
                )
                if first_wl is None:
                    first_wl = times.wl_start
                ready[("c", i * bn + j)] = float(times.complete * ratio)
                last_step.append(times)
            dispatch += inv_fetch * codegen.scalar_overhead_per_kstep
        return first_wl if first_wl is not None else 0, last_step[-1].complete, last_step

    # -- the public entry point ----------------------------------------------------

    def run_shape(
        self,
        shape: GemmShape,
        codegen: CodegenOptions = CodegenOptions(),
    ) -> SimResult:
        """Estimate the fast model's :class:`SimResult` for ``shape``."""
        blocking = codegen.blocking
        k_t = shape.k_tiles
        structure = _block_structure(shape, blocking)
        bypasses_on = self.engine.control.bypasses_on_reuse

        # -- exact counts ----------------------------------------------------------
        mm_count = shape.m_tiles * shape.n_tiles * shape.k_tiles
        instructions = 0
        bypass_count = 0
        for geom, nblocks in structure.blocks.items():
            per_block = (
                2 * geom.mms_per_step  # C loads + C stores
                + k_t * (
                    geom.loads_per_step
                    + geom.mms_per_step
                    + codegen.scalar_overhead_per_kstep
                )
                + codegen.scalar_overhead_per_block
            )
            instructions += nblocks * per_block
            if bypasses_on:
                pairs = geom.mm_pairs(blocking.mm_order)
                step_bypasses = sum(
                    1 for (_, j), (_, pj) in zip(pairs[1:], pairs) if j == pj
                )
                bypass_count += nblocks * k_t * step_bypasses
        weight_loads = mm_count - bypass_count

        # -- engine timeline -------------------------------------------------------
        warm_steps = min(_WARMUP_STEPS, k_t)
        first_wl, warm_end, warm_tail = self._warmup(
            structure.first, warm_steps, codegen
        )
        engine_last = float(warm_end)
        if k_t > warm_steps:
            settled, _ = self._settled(structure.first, blocking)
            engine_last += (k_t - warm_steps) * settled
        for (g1, g2), count in structure.boundary.items():
            engine_last += count * self._block_time(g1, g2, k_t, blocking)

        # The final K step's per-mm completion offsets, for the store tail.
        if structure.penultimate is None:
            if k_t <= warm_steps:
                pattern = warm_tail
            else:
                _, pattern = self._settled(structure.last, blocking)
        elif k_t <= _PROFILE_STEPS:
            _, patterns = self._block_profile(
                structure.penultimate, structure.last, blocking
            )
            pattern = patterns[k_t - 1]
        else:
            _, pattern = self._settled(structure.last, blocking)
        tail_offsets = [pattern[-1].complete - t.complete for t in pattern]

        # -- the CPU-side tail: stores, scalar overhead, retire pacing -------------
        ratio = self.ratio
        transfer = self.core.tile_transfer_cycles
        inv_retire = 1.0 / self.core.retire_width
        last_geom = structure.last
        pairs = last_geom.mm_pairs(blocking.mm_order)
        complete_cpu = {
            pair: (engine_last - offset) * ratio
            for pair, offset in zip(pairs, tail_offsets)
        }
        retire = 0.0
        for pair in pairs:
            retire = max(complete_cpu[pair] + 1, retire + inv_retire)
        retire += codegen.scalar_overhead_per_kstep * inv_retire
        store_port = 0.0
        for i in range(last_geom.bm):
            for j in range(last_geom.bn):
                start = max(complete_cpu[(i, j)], store_port)
                store_port = start + transfer
                retire = max(start + transfer + 1, retire + inv_retire)
        retire += codegen.scalar_overhead_per_block * inv_retire
        # Frontend/retire pacing floor — only binds on degenerate tiny
        # programs where the engine never becomes the bottleneck.
        floor = (
            self.core.frontend_latency
            + instructions / self.core.fetch_width
            + 2.0
        )
        cycles = int(-(-max(retire, floor) // 1))

        return SimResult(
            design=self.engine.describe(),
            program=shape.name or f"gemm_{shape.m}x{shape.n}x{shape.k}",
            cycles=cycles,
            instructions=instructions,
            mm_count=mm_count,
            bypass_count=bypass_count,
            weight_loads=weight_loads,
            engine_busy_cycles=int(round(engine_last)) - first_wl,
            clock_mhz=self.core.clock_mhz,
        )

    def energy(
        self,
        shape: GemmShape,
        codegen: CodegenOptions = CodegenOptions(),
        model: Optional[EnergyModel] = None,
    ) -> Tuple[SimResult, EnergyBreakdown]:
        """Analytic timing plus the :mod:`repro.physical` energy decomposition.

        ``mm_count``/``weight_loads`` are exact, so the dynamic energy terms
        match a fast-model run exactly; static energy inherits the cycle
        estimate's error bound.
        """
        result = self.run_shape(shape, codegen)
        return result, (model or EnergyModel()).run_energy(result, self.engine)
