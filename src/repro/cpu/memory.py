"""Memory-system models for tile loads.

The paper evaluates with an ideal memory ("we assume that the core is not
stalled by memory"), which :class:`IdealMemory` reproduces — every tile
load completes at the fixed L1 latency plus the 16-cycle row transfer.

:class:`CacheHierarchy` is an *extension* beyond the paper: a two-level
set-associative LRU cache model that lets the ablation benches ask when the
no-stall assumption breaks — RASA designs consume tile operands up to 6x
faster than the serialized baseline, so they are the first to expose a slow
memory system.  The model is deliberately simple (per-row line lookups, a
fixed miss penalty per level, misses within one tile load overlapped up to
a configurable memory-level-parallelism factor) and documented as such.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Protocol

from repro.errors import ConfigError
from repro.tile.layout import ROWS
from repro.utils.validation import check_positive


class MemoryModel(Protocol):
    """Structural interface of a tile-load memory model.

    Anything with these two methods plugs into the core models'
    ``memory=`` parameter; :class:`IdealMemory` and
    :class:`CacheHierarchy` are the in-tree implementations.
    """

    def tile_load_latency(self, address: int, stride: int, cycle: float) -> int:
        """Cycles from issue to data-complete for one 16-row tile load."""
        ...

    def reset(self) -> None:
        """Clear any accumulated state between runs."""
        ...


class IdealMemory:
    """The paper's memory model: fixed-latency, never stalls the core."""

    def __init__(self, l1_latency: int = 4, transfer_cycles: int = ROWS) -> None:
        check_positive("l1_latency", l1_latency)
        check_positive("transfer_cycles", transfer_cycles)
        self.l1_latency = l1_latency
        self.transfer_cycles = transfer_cycles

    def tile_load_latency(self, address: int, stride: int, cycle: float) -> int:
        """Cycles from issue to data-complete for one 16-row tile load."""
        return self.l1_latency + self.transfer_cycles

    def reset(self) -> None:
        """No state to clear."""


@dataclasses.dataclass(frozen=True)
class CacheLevelConfig:
    """One cache level: capacity, associativity, and hit latency."""

    name: str
    size_kib: int
    ways: int
    hit_latency: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        check_positive("size_kib", self.size_kib)
        check_positive("ways", self.ways)
        check_positive("hit_latency", self.hit_latency)
        check_positive("line_bytes", self.line_bytes)
        if self.num_sets <= 0:
            raise ConfigError(f"cache {self.name}: too small for {self.ways} ways")

    @property
    def num_sets(self) -> int:
        return (self.size_kib * 1024) // (self.line_bytes * self.ways)


class _CacheLevel:
    """Set-associative LRU tag store (timestamps as recency)."""

    def __init__(self, config: CacheLevelConfig) -> None:
        self.config = config
        # set index -> {tag: last-use stamp}
        self._sets: List[Dict[int, int]] = [dict() for _ in range(config.num_sets)]
        self._stamp = 0

    def access(self, address: int) -> bool:
        """Look up the line containing ``address``; fill on miss. True = hit."""
        line = address // self.config.line_bytes
        index = line % self.config.num_sets
        tag = line // self.config.num_sets
        tags = self._sets[index]
        self._stamp += 1
        hit = tag in tags
        if not hit and len(tags) >= self.config.ways:
            victim = min(tags, key=tags.__getitem__)
            del tags[victim]
        tags[tag] = self._stamp
        return hit

    def reset(self) -> None:
        for tags in self._sets:
            tags.clear()
        self._stamp = 0


@dataclasses.dataclass(frozen=True)
class HierarchyConfig:
    """Two-level hierarchy + DRAM, Skylake-ish defaults."""

    l1: CacheLevelConfig = CacheLevelConfig("L1", size_kib=32, ways=8, hit_latency=4)
    l2: CacheLevelConfig = CacheLevelConfig("L2", size_kib=1024, ways=16, hit_latency=14)
    dram_latency: int = 120
    #: Outstanding misses a tile load can overlap (MSHR-style MLP).
    mlp: int = 8
    transfer_cycles: int = ROWS

    def __post_init__(self) -> None:
        check_positive("dram_latency", self.dram_latency)
        check_positive("mlp", self.mlp)
        check_positive("transfer_cycles", self.transfer_cycles)


class CacheHierarchy:
    """Two-level LRU cache model for tile loads (extension, see module doc).

    A tile load touches one line per 64 B row (16 rows, strided).  Latency
    model: the slowest row's fill latency (L1/L2/DRAM), with misses beyond
    the ``mlp`` window serialized in batches, plus the fixed row-transfer
    occupancy.
    """

    def __init__(self, config: HierarchyConfig = HierarchyConfig()) -> None:
        self.config = config
        self._l1 = _CacheLevel(config.l1)
        self._l2 = _CacheLevel(config.l2)
        self.l1_hits = 0
        self.l2_hits = 0
        self.dram_fills = 0

    @property
    def l1_latency(self) -> int:
        return self.config.l1.hit_latency

    @property
    def transfer_cycles(self) -> int:
        return self.config.transfer_cycles

    def _row_latency(self, address: int) -> int:
        if self._l1.access(address):
            self.l1_hits += 1
            return self.config.l1.hit_latency
        if self._l2.access(address):
            self.l2_hits += 1
            return self.config.l2.hit_latency
        self.dram_fills += 1
        return self.config.dram_latency

    def tile_load_latency(self, address: int, stride: int, cycle: float) -> int:
        """Latency of one 16-row tile load through the hierarchy."""
        latencies = [self._row_latency(address + r * stride) for r in range(ROWS)]
        worst = max(latencies)
        misses = sum(1 for lat in latencies if lat > self.config.l1.hit_latency)
        # Misses overlap up to `mlp` at a time; each extra batch serializes
        # another worst-case fill.
        batches = max(0, -(-misses // self.config.mlp) - 1)
        return worst + batches * worst + self.config.transfer_cycles

    def reset(self) -> None:
        self._l1.reset()
        self._l2.reset()
        self.l1_hits = self.l2_hits = self.dram_fills = 0

    @property
    def accesses(self) -> int:
        return self.l1_hits + self.l2_hits + self.dram_fills

    def hit_rates(self) -> Dict[str, float]:
        """Per-level hit rates over all row accesses so far."""
        total = self.accesses
        if not total:
            return {"l1": 0.0, "l2": 0.0, "dram": 0.0}
        return {
            "l1": self.l1_hits / total,
            "l2": self.l2_hits / total,
            "dram": self.dram_fills / total,
        }
