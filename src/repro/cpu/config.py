"""CPU core configuration (Sec. V: Skylake-like MacSim parameters)."""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError
from repro.tile.layout import ROW_BYTES, TILE_BYTES
from repro.utils.validation import check_positive


@dataclasses.dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters.

    Defaults match the paper's evaluation configuration: CPU at 2 GHz,
    16 pipeline stages, ROB size 97, fetch/issue/retire width 4 (Intel
    Skylake-like), with an ideal memory system — tile loads always hit at a
    fixed L1 latency and transfer one 64 B row per cycle per port.
    """

    clock_mhz: int = 2000
    pipeline_stages: int = 16
    rob_size: int = 97
    fetch_width: int = 4
    issue_width: int = 4
    retire_width: int = 4
    alu_ports: int = 4
    load_ports: int = 2
    store_ports: int = 1
    scheduler_size: int = 60
    store_buffer_size: int = 56
    l1_latency: int = 4
    row_bytes_per_cycle: int = ROW_BYTES

    def __post_init__(self) -> None:
        for name in (
            "clock_mhz",
            "pipeline_stages",
            "rob_size",
            "fetch_width",
            "issue_width",
            "retire_width",
            "alu_ports",
            "load_ports",
            "store_ports",
            "scheduler_size",
            "store_buffer_size",
            "l1_latency",
            "row_bytes_per_cycle",
        ):
            check_positive(name, getattr(self, name))

    @property
    def frontend_latency(self) -> int:
        """Fetch-to-dispatch depth: the front half of the 16-stage pipeline."""
        return self.pipeline_stages // 2

    @property
    def tile_transfer_cycles(self) -> int:
        """Port occupancy of one tile load/store: 1 KB at 64 B per cycle = 16."""
        return -(-TILE_BYTES // self.row_bytes_per_cycle)

    @property
    def tile_load_latency(self) -> int:
        """Dispatch-to-data latency of a tile load (L1 hit + transfer)."""
        return self.l1_latency + self.tile_transfer_cycles

    def dispatch_floor(self, index: int) -> float:
        """No-stall lower bound on instruction ``index``'s dispatch timestamp.

        The frontend sustains ``fetch_width`` per cycle after the pipeline
        fill, so instruction ``i`` (0-based) can never dispatch before
        ``frontend_latency + (i + 1) / fetch_width`` — the floor the fast
        model starts from before ROB and port stalls.  The static bound
        analyzer (:mod:`repro.analysis.bounds`) anchors every dependence
        chain here.
        """
        return self.frontend_latency + (index + 1) / self.fetch_width

    def engine_clock_ratio(self, engine_mhz: int) -> int:
        """Core cycles per engine cycle (must divide evenly: 2 GHz / 500 MHz = 4)."""
        check_positive("engine_mhz", engine_mhz)
        if self.clock_mhz % engine_mhz:
            raise ConfigError(
                f"core clock {self.clock_mhz} MHz must be an integer multiple "
                f"of the engine clock {engine_mhz} MHz"
            )
        return self.clock_mhz // engine_mhz
