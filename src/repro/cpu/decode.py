"""Shared structure-of-arrays program pre-decode for the vectorized fast model.

The scalar :class:`repro.cpu.fast.FastCoreModel` re-walks ``Instruction``
objects once per design — for a table1 sweep that is 8 identical attribute
walks over every program.  :func:`decode_program` walks a program exactly
once and produces a :class:`DecodedProgram`: numpy arrays over the whole
stream (instruction kinds, memory operands) plus, per instruction class,
the *writer index* of every register operand — the program-order index of
the instruction whose result the operand reads, or ``-1`` when the operand
still holds its reset value.

Writer indices are the key design move: they eliminate the per-design
``tile_ready`` / ``scalar_ready`` register scoreboards entirely.  At run
time a reader's operand-readiness is simply ``complete[writer]``, so the
decoded form is design-independent and one decode is shared by all designs
(and by both the vectorized kernel and any future consumer).  The decode is
memoized on program identity, riding the same object-reuse discipline as
:func:`repro.runtime.session.cached_program`.

This module sits on the deterministic simulation path: no wall clock, no
randomness (enforced by ``tools/lint_invariants.py``).
"""

from __future__ import annotations

import dataclasses
import functools
from typing import List, Tuple

import numpy as np

from repro.isa.instructions import NUM_SCALAR_REGS, NUM_TILE_REGS
from repro.isa.opcodes import Opcode
from repro.isa.program import Program

#: Instruction-kind codes stored in :attr:`DecodedProgram.kind`.
KIND_LOAD = 0
KIND_STORE = 1
KIND_MM = 2
KIND_ALU = 3

#: Decodes retained; matches the program memo so a decode lives exactly as
#: long as sweeps keep handing out the same :class:`Program` object.
DECODE_CACHE_SIZE = 256


@dataclasses.dataclass(frozen=True, eq=False)
class DecodedProgram:
    """Design-independent structure-of-arrays view of one program.

    All ``*_pos`` arrays hold program-order instruction indices (int64,
    ascending); all ``*_writer`` arrays hold the program-order index of the
    instruction that produced the operand's value, or ``-1`` for the reset
    value (readiness 0.0).  Equality is identity (``eq=False``): decodes
    are cached per program object and never compared by content.
    """

    n: int
    #: Per-instruction kind code (``KIND_*``), length ``n``.
    kind: np.ndarray
    # -- tile loads --------------------------------------------------------
    load_pos: np.ndarray
    load_addr: np.ndarray
    load_stride: np.ndarray
    # -- tile stores -------------------------------------------------------
    store_pos: np.ndarray
    #: Writer of the stored tile register (a load or an mm), or ``-1``.
    store_writer: np.ndarray
    # -- matrix multiplies -------------------------------------------------
    mm_pos: np.ndarray
    mm_a_writer: np.ndarray
    mm_b_writer: np.ndarray
    mm_c_writer: np.ndarray
    #: Architectural B register index — half of the WLBP weight key.
    mm_b_reg: np.ndarray
    #: Write count of the B register before this mm — the other half: the
    #: scalar model's ``tile_version[b]`` at the moment it schedules the mm.
    mm_b_version: np.ndarray
    # -- scalar ALU / branch ----------------------------------------------
    alu_pos: np.ndarray
    #: Per ALU op: writer indices of its scalar source registers.
    alu_reads: Tuple[Tuple[int, ...], ...]


def _decode(program: Program) -> DecodedProgram:
    """One walk over ``program`` building every array (see module doc)."""
    tile_writer = [-1] * NUM_TILE_REGS
    tile_version = [0] * NUM_TILE_REGS
    scalar_writer = [-1] * NUM_SCALAR_REGS

    n = len(program)
    kind = np.empty(n, dtype=np.int8)
    load_pos: List[int] = []
    load_addr: List[int] = []
    load_stride: List[int] = []
    store_pos: List[int] = []
    store_writer: List[int] = []
    mm_pos: List[int] = []
    mm_a_writer: List[int] = []
    mm_b_writer: List[int] = []
    mm_c_writer: List[int] = []
    mm_b_reg: List[int] = []
    mm_b_version: List[int] = []
    alu_pos: List[int] = []
    alu_reads: List[Tuple[int, ...]] = []

    for i, inst in enumerate(program):
        op = inst.opcode
        if op is Opcode.RASA_TL:
            assert inst.mem is not None and inst.dst is not None
            kind[i] = KIND_LOAD
            load_pos.append(i)
            load_addr.append(inst.mem.address)
            load_stride.append(inst.mem.stride)
            reg = inst.dst.index
            tile_writer[reg] = i
            tile_version[reg] += 1
        elif op is Opcode.RASA_TS:
            kind[i] = KIND_STORE
            store_pos.append(i)
            store_writer.append(tile_writer[inst.srcs[0].index])
        elif op is Opcode.RASA_MM:
            kind[i] = KIND_MM
            a = inst.mm_a.index
            b = inst.mm_b.index
            c = inst.mm_c.index
            mm_pos.append(i)
            mm_a_writer.append(tile_writer[a])
            mm_b_writer.append(tile_writer[b])
            mm_c_writer.append(tile_writer[c])
            mm_b_reg.append(b)
            mm_b_version.append(tile_version[b])
            tile_writer[c] = i
            tile_version[c] += 1
        else:  # scalar ALU / branch
            kind[i] = KIND_ALU
            alu_pos.append(i)
            alu_reads.append(
                tuple(scalar_writer[src.index] for src in inst.scalar_reads)
            )
            for dst in inst.scalar_writes:
                scalar_writer[dst.index] = i

    def _arr(values: List[int]) -> np.ndarray:
        return np.asarray(values, dtype=np.int64)

    return DecodedProgram(
        n=n,
        kind=kind,
        load_pos=_arr(load_pos),
        load_addr=_arr(load_addr),
        load_stride=_arr(load_stride),
        store_pos=_arr(store_pos),
        store_writer=_arr(store_writer),
        mm_pos=_arr(mm_pos),
        mm_a_writer=_arr(mm_a_writer),
        mm_b_writer=_arr(mm_b_writer),
        mm_c_writer=_arr(mm_c_writer),
        mm_b_reg=_arr(mm_b_reg),
        mm_b_version=_arr(mm_b_version),
        alu_pos=_arr(alu_pos),
        alu_reads=tuple(alu_reads),
    )


@functools.lru_cache(maxsize=DECODE_CACHE_SIZE)
def decode_program(program: Program) -> DecodedProgram:
    """Memoized :class:`DecodedProgram` for ``program``.

    Keyed on program *identity*: :class:`repro.isa.program.Program` hashes
    by object, and the session layer (``cached_program``) hands every design
    the same object per distinct (shape, codegen) point, so all 8 designs
    share one decode.  A logically equal program built twice decodes twice —
    wasteful but correct.
    """
    return _decode(program)
