"""Register renaming: map architectural registers to producing uops.

With effectively unlimited physical registers (the fast model's assumption
too), renaming reduces to remembering, per architectural register, the most
recent in-flight producer; consumers depend on it, and WAR/WAW hazards
vanish.  Tile and scalar register spaces rename independently.
"""

from __future__ import annotations

from typing import Dict

from repro.cpu.ooo.uop import Uop
from repro.isa.instructions import TileReg


class RenameTable:
    """Latest-producer map for tile and scalar architectural registers."""

    def __init__(self) -> None:
        self._tile_producer: Dict[int, Uop] = {}
        self._scalar_producer: Dict[int, Uop] = {}
        self._tile_version: Dict[int, int] = {}

    def rename(self, uop: Uop) -> None:
        """Attach source dependencies and claim destinations for ``uop``."""
        inst = uop.inst
        for src in inst.tile_reads:
            producer = self._tile_producer.get(src.index)
            if producer is not None and not producer.retired:
                uop.deps.append(producer)
        for src in inst.scalar_reads:
            producer = self._scalar_producer.get(src.index)
            if producer is not None and not producer.retired:
                uop.deps.append(producer)
        for dst in inst.tile_writes:
            self._tile_producer[dst.index] = uop
            self._tile_version[dst.index] = self._tile_version.get(dst.index, 0) + 1
        for dst in inst.scalar_writes:
            self._scalar_producer[dst.index] = uop

    def tile_version(self, reg: TileReg) -> int:
        """Program-order write count of ``reg`` (the weight-key version)."""
        return self._tile_version.get(reg.index, 0)
