"""Micro-op record flowing through the cycle-accurate core."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.isa.instructions import Instruction


class Uop:
    """One in-flight instruction with its renamed dependencies and timestamps."""

    __slots__ = (
        "index",
        "inst",
        "deps",
        "issued",
        "issue_cycle",
        "complete_cycle",
        "retired",
        "retire_cycle",
        "weight_key",
    )

    def __init__(
        self,
        index: int,
        inst: Instruction,
        weight_key: Optional[Tuple[int, int]] = None,
    ) -> None:
        self.index = index
        self.inst = inst
        #: Producer uops this one waits on (filled at rename).
        self.deps: List["Uop"] = []
        self.issued = False
        self.issue_cycle: Optional[int] = None
        self.complete_cycle: Optional[int] = None
        self.retired = False
        self.retire_cycle: Optional[int] = None
        #: (B register, program-order version) for rasa_mm weight identity.
        self.weight_key: Optional[Tuple[int, int]] = weight_key

    def ready_at(self, cycle: int) -> bool:
        """All producers have completed by ``cycle``."""
        return all(
            d.complete_cycle is not None and d.complete_cycle <= cycle for d in self.deps
        )

    @property
    def completed(self) -> bool:
        return self.complete_cycle is not None

    def __repr__(self) -> str:
        state = (
            "retired"
            if self.retired
            else "complete"
            if self.completed
            else "issued"
            if self.issued
            else "waiting"
        )
        return f"Uop(#{self.index} {self.inst} [{state}])"
