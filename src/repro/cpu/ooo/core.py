"""The cycle-accurate out-of-order core.

Each cycle, in order: (1) retire up to ``retire_width`` completed uops from
the ROB head, (2) wakeup/select — issue ready reservation-station uops
oldest-first onto free ports (``rasa_mm`` additionally in program order onto
the matrix engine), (3) dispatch up to ``issue_width`` fetched instructions
into the ROB and reservation stations.  Idle stretches fast-forward to the
next event, so long engine operations don't cost simulation time.

This model exists to validate :class:`repro.cpu.fast.FastCoreModel`; the
test suite asserts the two agree on total cycles within a small tolerance
(and exactly on engine-side statistics) across policies and programs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cpu.config import CoreConfig
from repro.cpu.memory import IdealMemory, MemoryModel
from repro.cpu.ooo.frontend import FetchUnit
from repro.cpu.ooo.ports import ExecutionPorts
from repro.cpu.ooo.rename import RenameTable
from repro.cpu.ooo.rob import ReorderBuffer
from repro.cpu.ooo.uop import Uop
from repro.cpu.result import SimResult
from repro.engine.config import EngineConfig
from repro.engine.scheduler import EngineScheduler, StageTimes
from repro.errors import SimError
from repro.isa.opcodes import Opcode
from repro.isa.program import Program


class OutOfOrderCore:
    """Cycle-by-cycle OoO simulation of a program on one engine design."""

    def __init__(
        self,
        core: CoreConfig = CoreConfig(),
        engine: Optional[EngineConfig] = None,
        memory: Optional[MemoryModel] = None,
    ) -> None:
        self.core = core
        self.engine = engine if engine is not None else EngineConfig()
        self.ratio = core.engine_clock_ratio(self.engine.clock_mhz)
        self.memory: MemoryModel = memory if memory is not None else IdealMemory(
            l1_latency=core.l1_latency, transfer_cycles=core.tile_transfer_cycles
        )

    def run(self, program: Program, max_cycles: int = 50_000_000) -> SimResult:
        """Simulate ``program``; raises :class:`SimError` on deadlock/timeout."""
        core = self.core
        scheduler = EngineScheduler(self.engine)
        fetch = FetchUnit(core, len(program))
        rob = ReorderBuffer(core)
        rename = RenameTable()
        ports = ExecutionPorts(core)
        rs: List[Uop] = []
        instructions = list(program)
        next_dispatch_index = 0
        next_mm_issue_index = 0  # the engine consumes rasa_mm in program order
        mm_order: List[int] = [
            i for i, inst in enumerate(instructions) if inst.opcode is Opcode.RASA_MM
        ]
        mm_position = {index: pos for pos, index in enumerate(mm_order)}
        schedule: List[StageTimes] = []

        cycle = 0
        total_dispatched = 0
        while rob.occupancy or next_dispatch_index < len(instructions):
            if cycle > max_cycles:
                raise SimError(f"OoO simulation exceeded {max_cycles} cycles")

            # 1. Retire.
            rob.retire(cycle)

            # 2. Wakeup/select: oldest-first over the reservation stations.
            issued_this_cycle = 0
            for uop in sorted(rs, key=lambda u: u.index):
                if issued_this_cycle >= core.issue_width:
                    break
                if not uop.ready_at(cycle):
                    continue
                if self._try_issue(
                    uop, cycle, ports, scheduler, schedule, mm_position, next_mm_issue_index
                ):
                    if uop.inst.opcode is Opcode.RASA_MM:
                        next_mm_issue_index += 1
                    rs.remove(uop)
                    issued_this_cycle += 1

            # 3. Dispatch into ROB + RS.
            can_dispatch = min(
                core.issue_width,
                fetch.available(cycle),
                rob.free_slots,
                core.scheduler_size - len(rs),
            )
            for _ in range(max(0, can_dispatch)):
                inst = instructions[next_dispatch_index]
                weight_key: Optional[Tuple[int, int]] = None
                if inst.opcode is Opcode.RASA_MM:
                    weight_key = (inst.mm_b.index, rename.tile_version(inst.mm_b))
                uop = Uop(next_dispatch_index, inst, weight_key=weight_key)
                rename.rename(uop)
                rob.allocate(uop)
                rs.append(uop)
                fetch.consume(1)
                next_dispatch_index += 1
                total_dispatched += 1

            cycle += 1
            # Fast-forward across idle stretches (e.g. a 380-CPU-cycle mm).
            if rs and not any(u.ready_at(cycle) for u in rs):
                pending = [
                    d.complete_cycle
                    for u in rs
                    for d in u.deps
                    if d.complete_cycle is not None and d.complete_cycle > cycle
                ]
                head_not_retirable = rob.occupancy and rob.free_slots == 0
                if pending and not head_not_retirable and fetch.available(cycle) == 0:
                    cycle = max(cycle, min(pending))

        engine_busy = 0
        if schedule:
            engine_busy = schedule[-1].complete - schedule[0].wl_start
        return SimResult(
            design=self.engine.describe(),
            program=program.name,
            cycles=rob.last_retire_cycle,
            instructions=len(instructions),
            mm_count=len(schedule),
            bypass_count=scheduler.bypass_count,
            weight_loads=scheduler.weight_load_count,
            engine_busy_cycles=engine_busy,
            clock_mhz=core.clock_mhz,
        )

    def _try_issue(
        self,
        uop: Uop,
        cycle: int,
        ports: ExecutionPorts,
        scheduler: EngineScheduler,
        schedule: List[StageTimes],
        mm_position: Dict[int, int],
        next_mm_issue_index: int,
    ) -> bool:
        """Issue ``uop`` at ``cycle`` if its port is free; set completion time."""
        core = self.core
        op = uop.inst.opcode
        transfer = core.tile_transfer_cycles
        if op is Opcode.RASA_TL:
            if not ports.load.acquire(cycle, transfer):
                return False
            assert uop.inst.mem is not None  # _validate invariant
            uop.complete_cycle = cycle + self.memory.tile_load_latency(
                uop.inst.mem.address, uop.inst.mem.stride, cycle
            )
        elif op is Opcode.RASA_TS:
            if not ports.store.acquire(cycle, transfer):
                return False
            uop.complete_cycle = cycle + transfer
        elif op is Opcode.RASA_MM:
            if mm_position[uop.index] != next_mm_issue_index:
                return False  # engine consumes mm's strictly in program order
            ready = -(-cycle // self.ratio)
            times = scheduler.schedule_mm(
                ready_b=ready, ready_ac=ready, weight_key=uop.weight_key
            )
            schedule.append(times)
            uop.complete_cycle = times.complete * self.ratio
        else:
            if not ports.alu.acquire(cycle, 1):
                return False
            uop.complete_cycle = cycle + 1
        uop.issued = True
        uop.issue_cycle = cycle
        return True
