"""Reorder buffer: program-order window with in-order retirement."""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.cpu.config import CoreConfig
from repro.cpu.ooo.uop import Uop


class ReorderBuffer:
    """A ``rob_size``-entry FIFO of in-flight uops retiring in order."""

    def __init__(self, config: CoreConfig) -> None:
        self._capacity = config.rob_size
        self._retire_width = config.retire_width
        self._entries: Deque[Uop] = deque()
        self.retired_count = 0
        self.last_retire_cycle = 0

    @property
    def free_slots(self) -> int:
        return self._capacity - len(self._entries)

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def allocate(self, uop: Uop) -> None:
        if not self.free_slots:
            raise OverflowError("ROB allocate on a full buffer")
        self._entries.append(uop)

    def retire(self, cycle: int) -> List[Uop]:
        """Retire up to ``retire_width`` completed uops from the head."""
        retired: List[Uop] = []
        while len(retired) < self._retire_width and self._entries:
            complete = self._entries[0].complete_cycle
            if complete is None or complete >= cycle:
                break
            uop = self._entries.popleft()
            uop.retired = True
            uop.retire_cycle = cycle
            retired.append(uop)
            self.retired_count += 1
            self.last_retire_cycle = cycle
        return retired

    @property
    def empty(self) -> bool:
        return not self._entries
