"""Fetch/decode frontend: a rate limit plus the pipeline-fill delay.

The paper's traces are straight-line GEMM kernels with perfectly predictable
loop branches, so the frontend never redirects; it simply supplies
``fetch_width`` instructions per cycle once the 16-stage pipeline's front
half has filled.
"""

from __future__ import annotations

from repro.cpu.config import CoreConfig


class FetchUnit:
    """Tracks how many program instructions have been fetched by each cycle."""

    def __init__(self, config: CoreConfig, program_length: int) -> None:
        self._width = config.fetch_width
        self._latency = config.frontend_latency
        self._length = program_length
        self._consumed = 0

    def available(self, cycle: int) -> int:
        """Instructions fetched and decoded but not yet dispatched at ``cycle``."""
        if cycle < self._latency:
            return 0
        fetched = min(self._length, (cycle - self._latency + 1) * self._width)
        return fetched - self._consumed

    def consume(self, count: int) -> None:
        """Mark ``count`` instructions as dispatched out of the fetch buffer."""
        self._consumed += count

    @property
    def done(self) -> bool:
        return self._consumed >= self._length
