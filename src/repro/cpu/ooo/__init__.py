"""Cycle-accurate out-of-order core model.

A classic Tomasulo/ROB machine ticked cycle by cycle: fetch -> dispatch
(rename into ROB + reservation stations) -> wakeup/select onto execution
ports -> complete -> in-order retire.  Used to validate the fast
timestamp-propagation model on small programs; both share the
:class:`repro.engine.scheduler.EngineScheduler` for the matrix-engine port.
"""

from repro.cpu.ooo.core import OutOfOrderCore

__all__ = ["OutOfOrderCore"]
