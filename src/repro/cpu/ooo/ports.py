"""Execution ports: ALUs, load/store pipes, and the matrix-engine port."""

from __future__ import annotations

from typing import List

from repro.cpu.config import CoreConfig


class PortGroup:
    """A pool of identical ports, each busy until a given cycle."""

    def __init__(self, count: int, name: str) -> None:
        self._busy_until: List[int] = [0] * count
        self.name = name

    def acquire(self, cycle: int, occupancy: int) -> bool:
        """Claim a free port at ``cycle`` for ``occupancy`` cycles, if any."""
        for i, busy in enumerate(self._busy_until):
            if busy <= cycle:
                self._busy_until[i] = cycle + occupancy
                return True
        return False

    def any_free(self, cycle: int) -> bool:
        return any(busy <= cycle for busy in self._busy_until)


class ExecutionPorts:
    """The Skylake-like port complement of :class:`CoreConfig`."""

    def __init__(self, config: CoreConfig) -> None:
        self.alu = PortGroup(config.alu_ports, "alu")
        self.load = PortGroup(config.load_ports, "load")
        self.store = PortGroup(config.store_ports, "store")
