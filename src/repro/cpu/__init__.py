"""Trace-driven CPU core models (the paper's MacSim substrate).

The paper replays Intel-SDE traces through MacSim configured like a Skylake
core: 2 GHz, 16 pipeline stages, ROB of 97, fetch/issue/retire width 4, with
the matrix engine attached as a 500 MHz functional unit and an ideal memory
system ("the core is not stalled by memory").

Two interchangeable models execute :class:`repro.isa.program.Program`
streams against a RASA :class:`repro.engine.config.EngineConfig`:

- :class:`repro.cpu.fast.FastCoreModel` — O(n) timestamp propagation;
  used for the full evaluation sweeps.
- :class:`repro.cpu.ooo.core.OutOfOrderCore` — a cycle-by-cycle OoO core
  (fetch/rename/ROB/scheduler/execute/retire) used to validate the fast
  model's timing on small programs.
"""

from repro.cpu.config import CoreConfig
from repro.cpu.result import SimResult
from repro.cpu.fast import FastCoreModel
from repro.cpu.fastvec import FastVecCoreModel
from repro.cpu.ooo.core import OutOfOrderCore

__all__ = [
    "CoreConfig",
    "SimResult",
    "FastCoreModel",
    "FastVecCoreModel",
    "OutOfOrderCore",
]
