"""Fast timestamp-propagation core model.

One pass over the program computes, per instruction, its dispatch, execute
and retire timestamps under the Skylake-like resource constraints of
:class:`repro.cpu.config.CoreConfig`:

- frontend: sustained ``fetch_width`` instructions per cycle after a
  pipeline-fill delay (no branch mispredictions — the paper's traces are
  loop-dominated GEMM kernels with perfectly predictable branches);
- ROB: instruction ``i`` cannot dispatch before instruction ``i − 97``
  retires;
- ports: 4 ALU ports (1-cycle ops), 2 load ports and 1 store port moving
  one 64 B tile row per cycle (16-cycle occupancy per tile), and one matrix
  engine port scheduled by :class:`repro.engine.scheduler.EngineScheduler`
  in 500 MHz engine cycles (4 CPU cycles each);
- in-order retire at ``retire_width`` per cycle.

Dataflow is tracked through architectural tile/scalar registers with
infinite renaming (no WAR/WAW stalls), matching an aggressive OoO core.
The cycle-accurate model in :mod:`repro.cpu.ooo` validates this model's
timing on small programs.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cpu.config import CoreConfig
from repro.cpu.memory import IdealMemory, MemoryModel
from repro.cpu.result import SimResult
from repro.engine.config import EngineConfig
from repro.engine.scheduler import EngineScheduler, StageTimes
from repro.isa.instructions import NUM_SCALAR_REGS, NUM_TILE_REGS
from repro.isa.opcodes import Opcode
from repro.isa.program import Program


class FastCoreModel:
    """O(n) timestamp-propagation simulation of a program on one design."""

    def __init__(
        self,
        core: CoreConfig = CoreConfig(),
        engine: Optional[EngineConfig] = None,
        memory: Optional[MemoryModel] = None,
    ) -> None:
        self.core = core
        self.engine = engine if engine is not None else EngineConfig()
        self.ratio = core.engine_clock_ratio(self.engine.clock_mhz)
        # Default: the paper's ideal no-stall memory at the core's L1 latency.
        self.memory: MemoryModel = memory if memory is not None else IdealMemory(
            l1_latency=core.l1_latency, transfer_cycles=core.tile_transfer_cycles
        )
        self.last_schedule: Optional[List[StageTimes]] = None

    def run(self, program: Program, keep_schedule: bool = False) -> SimResult:
        """Simulate ``program``; returns the end-to-end :class:`SimResult`.

        Args:
            program: the instruction stream (program order = fetch order).
            keep_schedule: retain every mm's :class:`StageTimes` on
                ``self.last_schedule`` (memory-heavy; used by tests).
        """
        core = self.core
        ratio = self.ratio
        scheduler = EngineScheduler(self.engine)

        inv_fetch = 1.0 / core.fetch_width
        inv_retire = 1.0 / core.retire_width
        transfer = core.tile_transfer_cycles
        memory = self.memory

        tile_ready = [0.0] * NUM_TILE_REGS
        tile_version = [0] * NUM_TILE_REGS
        scalar_ready = [0.0] * NUM_SCALAR_REGS
        load_ports = [0.0] * core.load_ports
        store_ports = [0.0] * core.store_ports
        alu_ports = [0.0] * core.alu_ports

        rob_size = core.rob_size
        retire_ring: List[float] = [0.0] * rob_size  # retire time of inst i mod rob
        dispatch_prev = float(core.frontend_latency)
        retire_prev = 0.0

        # Port selection is on the per-instruction hot path; the default
        # core has 2 load ports and 1 store port, where the generic
        # min-over-range scan is pure overhead.  The inline forms keep
        # min()'s lowest-index tie-breaking, so timing is bit-identical.
        two_load_ports = core.load_ports == 2
        one_store_port = core.store_ports == 1

        mm_count = 0
        schedule: Optional[List[StageTimes]] = [] if keep_schedule else None
        first_wl: Optional[int] = None
        last_complete = 0

        for i, inst in enumerate(program):
            dispatch = dispatch_prev + inv_fetch
            if i >= rob_size:
                dispatch = max(dispatch, retire_ring[i % rob_size])
            dispatch_prev = dispatch
            op = inst.opcode

            if op is Opcode.RASA_TL:
                assert inst.mem is not None and inst.dst is not None
                if two_load_ports:
                    port = 0 if load_ports[0] <= load_ports[1] else 1
                else:
                    port = min(range(core.load_ports), key=load_ports.__getitem__)
                start = max(dispatch, load_ports[port])
                load_ports[port] = start + transfer
                complete = start + memory.tile_load_latency(
                    inst.mem.address, inst.mem.stride, start
                )
                reg = inst.dst.index
                tile_ready[reg] = complete
                tile_version[reg] += 1

            elif op is Opcode.RASA_TS:
                if one_store_port:
                    port = 0
                else:
                    port = min(range(core.store_ports), key=store_ports.__getitem__)
                start = max(dispatch, tile_ready[inst.srcs[0].index], store_ports[port])
                store_ports[port] = start + transfer
                complete = start + transfer

            elif op is Opcode.RASA_MM:
                b = inst.mm_b.index
                a = inst.mm_a.index
                c = inst.mm_c.index
                # The mm issues to the engine once all three tile operands are
                # ready (same rule as the cycle-accurate core, so the two
                # models agree; loads complete far ahead in steady state, so
                # splitting B readiness from A/C gains almost nothing).
                ready = self._to_engine(
                    max(dispatch, tile_ready[a], tile_ready[b], tile_ready[c])
                )
                times = scheduler.schedule_mm(
                    ready_b=ready,
                    ready_ac=ready,
                    weight_key=(b, tile_version[b]),
                )
                if first_wl is None:
                    first_wl = times.wl_start
                last_complete = times.complete
                complete = float(times.complete * ratio)
                tile_ready[c] = complete
                tile_version[c] += 1
                mm_count += 1
                if schedule is not None:
                    schedule.append(times)

            else:  # scalar ALU / branch
                port = min(range(core.alu_ports), key=alu_ports.__getitem__)
                start = max(dispatch, alu_ports[port])
                for src in inst.scalar_reads:
                    start = max(start, scalar_ready[src.index])
                alu_ports[port] = start + 1
                complete = start + 1
                for dst in inst.scalar_writes:
                    scalar_ready[dst.index] = complete

            retire = max(complete + 1, retire_prev + inv_retire)
            retire_prev = retire
            retire_ring[i % rob_size] = retire

        self.last_schedule = schedule
        engine_busy = (last_complete - first_wl) if first_wl is not None else 0
        return SimResult(
            design=self.engine.describe(),
            program=program.name,
            cycles=int(-(-retire_prev // 1)),
            instructions=len(program),
            mm_count=mm_count,
            bypass_count=scheduler.bypass_count,
            weight_loads=scheduler.weight_load_count,
            engine_busy_cycles=engine_busy,
            clock_mhz=core.clock_mhz,
        )

    def _to_engine(self, cpu_cycle: float) -> int:
        """Convert a CPU-cycle timestamp to the engine clock domain (ceil)."""
        return int(-(-cpu_cycle // self.ratio))
