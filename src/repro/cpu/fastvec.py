"""Vectorized fast core model: numpy timestamp propagation, bit-identical.

:class:`FastVecCoreModel` computes exactly the timestamps of the scalar
:class:`repro.cpu.fast.FastCoreModel` — same ``SimResult``, same optional
``last_schedule``, same ``ScheduleError``s — but propagates them with
``np.maximum.accumulate`` over ROB-sized blocks instead of a per-instruction
Python loop.  The stream is processed in blocks of ``rob_size`` because the
only backward-looking constraint, ``dispatch_i >= retire_(i - rob_size)``,
then always reaches into the *previous* block: each block's dispatches,
load/store starts and retires become affine prefix-max (Lindley) recurrences
``t_j = max(v_j, t_(j-c) + s)``, solved in closed form as
``max.accumulate(v_j - j*s) + j*s`` per residue class.

Why the recurrences are safe to use where they are used:

- **dispatch / retire** — single chains with constant increments
  (``1/fetch_width``, ``1/retire_width``).
- **loads** — a c-server queue with *constant* service time (the tile
  transfer occupancy) and *nondecreasing* arrivals (dispatch timestamps):
  under least-loaded port choice the j-th load then starts exactly at
  ``max(dispatch_j, start_(j-c) + transfer)`` whatever the tie-break, so
  the c port chains decompose by load ordinal mod c.  Memory latency only
  affects the load's *complete*, never its port occupancy.
- **stores** — arrivals include operand readiness and are *not* monotone,
  so the c-server closed form is invalid in general; the default core has
  ``store_ports == 1`` where the plain Lindley chain needs no monotonicity.
  Other port counts fall back to the scalar model.
- **ALU ops and rasa_mms** stay as (short) scalar walks: ALU arrivals are
  dependence-shaped (no valid multi-server closed form) and the engine
  scheduler chain is inherently sequential.  Both are minority opcodes in
  GEMM streams; the walks read operand readiness straight from the decoded
  writer indices (:mod:`repro.cpu.decode`), so no register scoreboards.

**Bit-identity of the float arithmetic.**  Every timestamp in the scalar
model is a multiple of ``2**-k`` where ``2**k = lcm(fetch_width,
retire_width)``: all latencies and occupancies are integers and the only
fractional increments are the width reciprocals.  When both widths are
powers of two (the gate below), every add/subtract/multiply this module
performs on such values is exact in float64 (dyadic values far below the
2**53 mantissa limit), so regrouping the recurrences cannot change a single
bit.  Non-power-of-two widths delegate to the scalar model, as does a
non-default store-port count — so the model is bit-identical to
``FastCoreModel`` on *every* configuration, by construction where it
matters and by delegation elsewhere.

This module sits on the deterministic simulation path: no wall clock, no
randomness (enforced by ``tools/lint_invariants.py``).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cpu.config import CoreConfig
from repro.cpu.decode import DecodedProgram, decode_program
from repro.cpu.fast import FastCoreModel
from repro.cpu.memory import IdealMemory, MemoryModel
from repro.cpu.result import SimResult
from repro.engine.config import ControlPolicy, EngineConfig
from repro.engine.scheduler import StageTimes
from repro.errors import ScheduleError
from repro.isa.program import Program


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


class FastVecCoreModel:
    """Drop-in replacement for :class:`FastCoreModel` (same results, faster).

    The constructor signature, ``run`` contract, ``last_schedule`` attribute
    and every raised error match the scalar model exactly; the test suite
    asserts full-``SimResult`` equality on random and suite programs.
    """

    def __init__(
        self,
        core: CoreConfig = CoreConfig(),
        engine: Optional[EngineConfig] = None,
        memory: Optional[MemoryModel] = None,
    ) -> None:
        self.core = core
        self.engine = engine if engine is not None else EngineConfig()
        self.ratio = core.engine_clock_ratio(self.engine.clock_mhz)
        self.memory: MemoryModel = memory if memory is not None else IdealMemory(
            l1_latency=core.l1_latency, transfer_cycles=core.tile_transfer_cycles
        )
        self.last_schedule: Optional[List[StageTimes]] = None
        self._reference: Optional[FastCoreModel] = None

    # -- scalar delegation -------------------------------------------------

    def _vectorizable(self) -> bool:
        """Whether the closed forms above are exact for this configuration."""
        core = self.core
        return (
            _is_pow2(core.fetch_width)
            and _is_pow2(core.retire_width)
            and core.store_ports == 1
        )

    def _run_reference(self, program: Program, keep_schedule: bool) -> SimResult:
        if self._reference is None:
            self._reference = FastCoreModel(
                core=self.core, engine=self.engine, memory=self.memory
            )
        result = self._reference.run(program, keep_schedule=keep_schedule)
        self.last_schedule = self._reference.last_schedule
        return result

    # -- the kernel --------------------------------------------------------

    def run(self, program: Program, keep_schedule: bool = False) -> SimResult:
        """Simulate ``program``; see :meth:`FastCoreModel.run`."""
        if not self._vectorizable():
            return self._run_reference(program, keep_schedule)

        core = self.core
        decoded = decode_program(program)
        n = decoded.n
        rob = core.rob_size
        inv_fetch = 1.0 / core.fetch_width
        inv_retire = 1.0 / core.retire_width
        transfer = core.tile_transfer_cycles
        memory = self.memory
        # Exact-type check: a subclass may override the latency rule, and
        # only the genuine ideal model is a closed-form constant.
        ideal = type(memory) is IdealMemory
        ideal_latency = (
            memory.l1_latency + memory.transfer_cycles  # type: ignore[attr-defined]
            if ideal
            else 0
        )

        # Per-block affine offsets, shared by every block.
        idx_fetch = np.arange(rob, dtype=np.float64) * inv_fetch
        idx_retire = np.arange(rob, dtype=np.float64) * inv_retire
        one_minus_idx_retire = 1.0 - idx_retire
        idx_transfer = np.arange(rob, dtype=np.float64) * transfer
        neg_inf = np.full(rob, -np.inf)

        # Block boundaries per instruction class (block k owns indices
        # [k*rob, (k+1)*rob), so bounds come from one searchsorted each).
        edges = np.arange(0, n + rob, rob, dtype=np.int64)
        load_bounds = np.searchsorted(decoded.load_pos, edges).tolist()
        store_bounds = np.searchsorted(decoded.store_pos, edges).tolist()
        mm_bounds = np.searchsorted(decoded.mm_pos, edges).tolist()
        alu_bounds = np.searchsorted(decoded.alu_pos, edges).tolist()

        # Walk-side views (python ints index faster than numpy scalars).
        mm_pos = decoded.mm_pos.tolist()
        mm_a_writer = decoded.mm_a_writer.tolist()
        mm_b_writer = decoded.mm_b_writer.tolist()
        mm_c_writer = decoded.mm_c_writer.tolist()
        mm_b_reg = decoded.mm_b_reg.tolist()
        mm_b_version = decoded.mm_b_version.tolist()
        alu_pos = decoded.alu_pos.tolist()
        alu_reads = decoded.alu_reads
        load_addr = decoded.load_addr
        load_stride = decoded.load_stride

        dispatch = np.empty(n, dtype=np.float64)
        complete = np.zeros(n, dtype=np.float64)
        retire = np.empty(n, dtype=np.float64)

        # Carried recurrence state.
        dispatch_carry = float(core.frontend_latency)
        retire_carry = 0.0
        load_ports = core.load_ports
        load_carry = [0.0] * load_ports
        store_carry = 0.0
        alu_port_times = [0.0] * core.alu_ports
        num_alu_ports = core.alu_ports

        # Inlined engine-scheduler state (see EngineScheduler.schedule_mm).
        engine = self.engine
        stages = engine.stages
        s_wl, s_ff, s_fs, s_dr = stages.wl, stages.ff, stages.fs, stages.dr
        s_extra = stages.extra
        ratio = self.ratio
        policy = engine.control
        bypass_on_reuse = policy.bypasses_on_reuse
        is_base = policy is ControlPolicy.BASE
        is_wls = policy is ControlPolicy.WLS
        ff_overlaps_fs = engine.wlbp_ff_overlaps_fs
        has_prev = False
        prev_wl_end = prev_ff_start = prev_ff_end = prev_fs_end = prev_dr_end = 0
        prev_index = 0
        resident_b_reg = -1
        resident_b_version = -1
        mm_count = 0
        bypasses = 0
        weight_loads = 0
        schedule: Optional[List[StageTimes]] = [] if keep_schedule else None
        first_wl: Optional[int] = None
        last_complete = 0

        for block, lo in enumerate(range(0, n, rob)):
            hi = min(lo + rob, n)
            m = hi - lo

            # Dispatch: d_j = max(d_(j-1) + 1/W, retire_(j-rob)).
            ring = retire[lo - rob : hi - rob] if lo >= rob else neg_inf[:m]
            w = ring - idx_fetch[:m]
            first = dispatch_carry + inv_fetch
            if first > w[0]:
                w[0] = first
            np.maximum.accumulate(w, out=w)
            disp = w
            disp += idx_fetch[:m]
            dispatch[lo:hi] = disp
            dispatch_carry = float(disp[-1])
            disp_list = disp.tolist()

            # Tile loads: c constant-service port chains by load ordinal mod c.
            lb, le = load_bounds[block], load_bounds[block + 1]
            if le > lb:
                offs = decoded.load_pos[lb:le]
                arrivals = dispatch[offs]
                count = le - lb
                starts = np.empty(count, dtype=np.float64)
                for cls in range(load_ports):
                    j0 = (cls - lb) % load_ports
                    if j0 >= count:
                        continue
                    sub = arrivals[j0::load_ports]
                    u = sub - idx_transfer[: len(sub)]
                    if load_carry[cls] > u[0]:
                        u[0] = load_carry[cls]
                    np.maximum.accumulate(u, out=u)
                    u += idx_transfer[: len(sub)]
                    starts[j0::load_ports] = u
                    load_carry[cls] = float(u[-1]) + transfer
                if ideal:
                    complete[offs] = starts + ideal_latency
                else:
                    # Stateful memory models are order-dependent: issue the
                    # latency probes one by one, in program order, exactly
                    # like the scalar model does.
                    lat = np.empty(count, dtype=np.float64)
                    starts_list = starts.tolist()
                    for j in range(count):
                        lat[j] = memory.tile_load_latency(
                            int(load_addr[lb + j]),
                            int(load_stride[lb + j]),
                            starts_list[j],
                        )
                    complete[offs] = starts + lat

            # rasa_mms: the sequential engine-scheduler chain, inlined.
            for j in range(mm_bounds[block], mm_bounds[block + 1]):
                i = mm_pos[j]
                ready_cpu = disp_list[i - lo]
                writer = mm_a_writer[j]
                if writer >= 0 and complete[writer] > ready_cpu:
                    ready_cpu = complete[writer]
                writer = mm_b_writer[j]
                if writer >= 0 and complete[writer] > ready_cpu:
                    ready_cpu = complete[writer]
                writer = mm_c_writer[j]
                if writer >= 0 and complete[writer] > ready_cpu:
                    ready_cpu = complete[writer]
                ready = int(-(-ready_cpu // ratio))

                b_reg = mm_b_reg[j]
                b_version = mm_b_version[j]
                bypass = (
                    bypass_on_reuse
                    and resident_b_reg == b_reg
                    and resident_b_version == b_version
                )
                if bypass:
                    ff_start = ready
                    if has_prev:
                        floor = prev_ff_end if ff_overlaps_fs else prev_fs_end
                        if floor > ff_start:
                            ff_start = floor
                    wl_start = wl_end = ff_start
                    bypasses += 1
                else:
                    wl_start = ready
                    if has_prev:
                        if prev_wl_end > wl_start:
                            wl_start = prev_wl_end
                        if is_base:
                            floor = prev_dr_end
                        elif is_wls:
                            floor = prev_ff_start
                        else:  # PIPE / WLBP
                            floor = prev_fs_end
                        if floor > wl_start:
                            wl_start = floor
                    wl_end = wl_start + s_wl
                    ff_start = wl_end if wl_end > ready else ready
                    if has_prev and prev_ff_end > ff_start:
                        ff_start = prev_ff_end
                    weight_loads += 1
                ff_end = ff_start + s_ff
                fs_end = ff_end + s_fs
                dr_end = fs_end + s_dr
                complete_engine = dr_end + s_extra
                if has_prev and fs_end < prev_dr_end:
                    raise ScheduleError(
                        f"drain-port conflict between mm {prev_index} and "
                        f"{mm_count}: {prev_dr_end} > {fs_end}"
                    )
                if schedule is not None:
                    schedule.append(
                        StageTimes(
                            index=mm_count,
                            wl_start=wl_start,
                            wl_end=wl_end,
                            ff_start=ff_start,
                            ff_end=ff_end,
                            fs_end=fs_end,
                            dr_end=dr_end,
                            complete=complete_engine,
                            bypassed=bypass,
                        )
                    )
                if first_wl is None:
                    first_wl = wl_start
                last_complete = complete_engine
                complete[i] = float(complete_engine * ratio)
                has_prev = True
                prev_wl_end = wl_end
                prev_ff_start = ff_start
                prev_ff_end = ff_end
                prev_fs_end = fs_end
                prev_dr_end = dr_end
                prev_index = mm_count
                resident_b_reg = b_reg
                resident_b_version = b_version
                mm_count += 1

            # Tile stores: the single port is a plain Lindley chain (the
            # _vectorizable gate pinned store_ports == 1).
            sb, se = store_bounds[block], store_bounds[block + 1]
            if se > sb:
                offs = decoded.store_pos[sb:se]
                writers = decoded.store_writer[sb:se]
                ready_arr = complete[np.maximum(writers, 0)]
                vals = np.maximum(
                    dispatch[offs], np.where(writers >= 0, ready_arr, 0.0)
                )
                count = se - sb
                u = vals - idx_transfer[:count]
                if store_carry > u[0]:
                    u[0] = store_carry
                np.maximum.accumulate(u, out=u)
                u += idx_transfer[:count]
                store_carry = float(u[-1]) + transfer
                complete[offs] = u + transfer

            # Scalar ALU / branch: dependence-shaped arrivals, short walk.
            for j in range(alu_bounds[block], alu_bounds[block + 1]):
                i = alu_pos[j]
                start = disp_list[i - lo]
                port = 0
                best = alu_port_times[0]
                for q in range(1, num_alu_ports):
                    if alu_port_times[q] < best:
                        best = alu_port_times[q]
                        port = q
                if best > start:
                    start = best
                for writer in alu_reads[j]:
                    if writer >= 0 and complete[writer] > start:
                        start = complete[writer]
                done = start + 1
                alu_port_times[port] = done
                complete[i] = done

            # Retire: r_j = max(complete_j + 1, r_(j-1) + 1/W).
            u = complete[lo:hi] + one_minus_idx_retire[:m]
            first = retire_carry + inv_retire
            if first > u[0]:
                u[0] = first
            np.maximum.accumulate(u, out=u)
            u += idx_retire[:m]
            retire[lo:hi] = u
            retire_carry = float(u[-1])

        self.last_schedule = schedule
        engine_busy = (last_complete - first_wl) if first_wl is not None else 0
        return SimResult(
            design=engine.describe(),
            program=program.name,
            cycles=int(-(-retire_carry // 1)),
            instructions=n,
            mm_count=mm_count,
            bypass_count=bypasses,
            weight_loads=weight_loads,
            engine_busy_cycles=engine_busy,
            clock_mhz=core.clock_mhz,
        )

    def _to_engine(self, cpu_cycle: float) -> int:
        """Convert a CPU-cycle timestamp to the engine clock domain (ceil)."""
        return int(-(-cpu_cycle // self.ratio))


__all__ = ["FastVecCoreModel", "DecodedProgram", "decode_program"]
